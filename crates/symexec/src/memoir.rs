//! Bounded path enumeration over MEMOIR functions.
//!
//! The engine mirrors `memoir-interp`'s `Interp` step for step — the same
//! trap conditions, the same wrapping/truncating arithmetic, the same
//! `as_index`/`Key::from_value` coercions, the same by-value copies on
//! mut-form calls — but scalars are symbolic terms over the entry
//! function's parameters. Control splits (branches, possibly-zero
//! divisors, symbolic indices with narrow intervals) fork the execution;
//! everything the term language cannot express precisely (floats,
//! pointers, wide symbolic indices, externs) aborts enumeration with
//! [`SymError::Unsupported`], which callers treat as "fall back to
//! probing" — never as a verdict.

use crate::solver::{self, Lit};
use crate::term::{type_domain, TermId, TermPool};
use crate::{Budget, Path, PathEnd, SymError};
use memoir_ir::BlockId;
use memoir_ir::{
    BinOp, Callee, CmpOp, Constant, Form, FuncId, Function, InstKind, Module, Type, ValueDef,
    ValueId,
};
use std::collections::HashMap;

/// A symbolic value: the mirror of `memoir_interp::Value` with terms for
/// scalar payloads. Floats and raw pointers are unsupported.
#[derive(Clone, Debug, PartialEq)]
pub enum SymValue {
    /// Integer of the given type; the term denotes the `i64` payload.
    Int(Type, TermId),
    /// Boolean; the term denotes `0`/`1`.
    Bool(TermId),
    /// Collection handle into the symbolic store.
    Coll(usize),
    /// Object reference (`None` = null).
    Ref(Option<usize>),
    /// Uninitialized.
    Uninit,
}

/// A concrete associative key (the engine forks until keys are concrete).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymKey {
    /// Raw integer payload (mirrors `Key::Int`: type-erased).
    Int(i64),
    /// Boolean key.
    Bool(bool),
    /// Reference key.
    Ref(Option<usize>),
}

/// A symbolic collection.
#[derive(Clone, Debug, PartialEq)]
pub enum SymColl {
    /// Sequence: length is always concrete.
    Seq(Vec<SymValue>),
    /// Associative array in insertion order (mirrors the interpreter's
    /// `map` + `order` pair: overwrites keep a key's position, removals
    /// drop it, re-inserts append).
    Assoc(Vec<(SymKey, SymValue)>),
}

impl SymColl {
    fn len(&self) -> usize {
        match self {
            SymColl::Seq(v) => v.len(),
            SymColl::Assoc(e) => e.len(),
        }
    }
}

/// A symbolic object: `None` fields = deleted.
#[derive(Clone, Debug, PartialEq)]
pub struct SymObj {
    fields: Option<Vec<SymValue>>,
}

/// The symbolic heap of one execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SymStore {
    colls: Vec<SymColl>,
    objs: Vec<SymObj>,
}

impl SymStore {
    fn alloc_coll(&mut self, c: SymColl) -> usize {
        self.colls.push(c);
        self.colls.len() - 1
    }

    /// Shallow clone, like `Store::clone_coll` (nested handles stay
    /// shared).
    fn clone_coll(&mut self, id: usize) -> usize {
        let c = self.colls[id].clone();
        self.alloc_coll(c)
    }
}

/// One call frame.
#[derive(Clone, Debug)]
struct Frame {
    fid: FuncId,
    block: BlockId,
    at: usize,
    env: HashMap<ValueId, SymValue>,
}

/// One in-flight execution (a path prefix).
#[derive(Clone, Debug)]
struct Exec {
    frames: Vec<Frame>,
    store: SymStore,
    cond: Vec<Lit>,
    /// Concrete values pinned by forking, keyed by term: lets a re-run
    /// of the forked instruction resolve the same term concretely.
    fixes: HashMap<TermId, i64>,
}

/// Why an instruction could not complete on this attempt.
enum Stop {
    /// The concrete interpreter would trap here (any trap kind).
    Trap,
    /// Fork the execution, pinning `term` to each value in turn.
    Fork(TermId, Vec<i64>),
    /// Fork the execution on `term != 0` / `term == 0`.
    BoolFork(TermId),
    /// The program uses a construct the engine cannot model.
    Unsupported(&'static str),
}

type R<T> = Result<T, Stop>;

enum StepOut {
    /// Instruction completed; keep stepping this execution.
    Continue,
    /// Execution was replaced by forked children on the worklist.
    Forked,
    /// The path ended (return from the entry frame, or a trap).
    End(PathEnd),
}

fn is_unsigned(t: Type) -> bool {
    matches!(
        t,
        Type::U64 | Type::U32 | Type::U16 | Type::U8 | Type::Index
    )
}

/// Enumerates all feasible paths of `fid`, with the entry parameters
/// symbolic. The caller must have seeded `pool.param_tys` with the entry
/// function's (all-scalar, non-float) parameter types.
pub fn enumerate_memoir(
    module: &Module,
    fid: FuncId,
    pool: &mut TermPool,
    budget: &Budget,
) -> Result<Vec<Path>, SymError> {
    let f = &module.funcs[fid];
    let mut env = HashMap::new();
    for (i, &pv) in f.param_values.iter().enumerate() {
        let ty = module.types.get(f.params[i].ty);
        let t = pool.param(i as u32);
        let v = match ty {
            Type::Bool => SymValue::Bool(t),
            ty if ty.is_integer() => SymValue::Int(ty, t),
            _ => return Err(SymError::Unsupported("non-integer parameter")),
        };
        env.insert(pv, v);
    }
    let init = Exec {
        frames: vec![Frame {
            fid,
            block: f.entry,
            at: 0,
            env,
        }],
        store: SymStore::default(),
        cond: Vec::new(),
        fixes: HashMap::new(),
    };
    let mut eng = Engine {
        module,
        pool,
        budget,
        ops: 0,
        worklist: vec![init],
        paths: Vec::new(),
    };
    eng.run()?;
    Ok(eng.paths)
}

struct Engine<'m, 'p, 'b> {
    module: &'m Module,
    pool: &'p mut TermPool,
    budget: &'b Budget,
    ops: u64,
    worklist: Vec<Exec>,
    paths: Vec<Path>,
}

impl Engine<'_, '_, '_> {
    fn run(&mut self) -> Result<(), SymError> {
        while let Some(mut ex) = self.worklist.pop() {
            loop {
                self.ops += 1;
                if self.ops > self.budget.max_ops {
                    return Err(SymError::BudgetExceeded);
                }
                match self.step(&mut ex)? {
                    StepOut::Continue => {}
                    StepOut::Forked => break,
                    StepOut::End(end) => {
                        if self.paths.len() >= self.budget.max_paths {
                            return Err(SymError::BudgetExceeded);
                        }
                        self.paths.push(Path {
                            cond: ex.cond.clone(),
                            end,
                        });
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Pushes forked children of `ex` (which must not have executed the
    /// current instruction yet) constraining `t` to each value.
    fn fork_values(&mut self, ex: &Exec, t: TermId, vals: &[i64]) {
        // Reverse so the lowest value is popped (and explored) first —
        // the worklist is LIFO.
        for &v in vals.iter().rev() {
            let c = self.pool.konst(v);
            let lit = (self.pool.cmp(CmpOp::Eq, false, t, c), true);
            let mut child = ex.clone();
            child.cond.push(lit);
            child.fixes.insert(t, v);
            if !solver::contradicts(self.pool, &child.cond) {
                self.worklist.push(child);
            }
        }
    }

    fn fork_bool(&mut self, ex: &Exec, t: TermId) {
        for (truth, fix) in [(false, 0i64), (true, 1i64)] {
            let mut child = ex.clone();
            child.cond.push((t, truth));
            child.fixes.insert(t, fix);
            if !solver::contradicts(self.pool, &child.cond) {
                self.worklist.push(child);
            }
        }
    }

    /// A term's concrete value on this path, forking if it is narrow.
    fn resolve_i64(&self, ex: &Exec, t: TermId) -> R<i64> {
        if let Some(v) = self.pool.as_const(t) {
            return Ok(v);
        }
        if let Some(&v) = ex.fixes.get(&t) {
            return Ok(v);
        }
        let iv = solver::interval_under(self.pool, &ex.cond, t);
        let width = iv.hi.saturating_sub(iv.lo).saturating_add(1);
        if width >= 1 && width <= self.budget.fork_width as i128 {
            Err(Stop::Fork(t, (iv.lo..=iv.hi).map(|v| v as i64).collect()))
        } else {
            Err(Stop::Unsupported("wide symbolic index/length"))
        }
    }

    fn resolve_bool(&self, ex: &Exec, t: TermId) -> R<bool> {
        if let Some(v) = self.pool.as_const(t) {
            return Ok(v != 0);
        }
        if let Some(&v) = ex.fixes.get(&t) {
            return Ok(v != 0);
        }
        Err(Stop::BoolFork(t))
    }

    /// Mirrors `Value::as_index` (with forking for symbolic payloads).
    fn resolve_index(&self, ex: &Exec, v: &SymValue) -> R<u64> {
        match v {
            SymValue::Int(Type::Index, t) => Ok(self.resolve_i64(ex, *t)? as u64),
            SymValue::Int(_, t) => {
                let x = self.resolve_i64(ex, *t)?;
                if x >= 0 {
                    Ok(x as u64)
                } else {
                    Err(Stop::Trap) // as_index → None → TypeConfusion
                }
            }
            _ => Err(Stop::Trap),
        }
    }

    /// Mirrors `Key::from_value` (with forking for symbolic payloads).
    fn resolve_key(&self, ex: &Exec, v: &SymValue) -> R<SymKey> {
        match v {
            SymValue::Int(_, t) => Ok(SymKey::Int(self.resolve_i64(ex, *t)?)),
            SymValue::Bool(t) => Ok(SymKey::Bool(self.resolve_bool(ex, *t)?)),
            SymValue::Ref(o) => Ok(SymKey::Ref(*o)),
            _ => Err(Stop::Trap), // Coll/Uninit → bad key
        }
    }

    fn const_value(&mut self, c: Constant) -> R<SymValue> {
        match c {
            Constant::Int(ty, v) => Ok(SymValue::Int(ty, self.pool.konst(v))),
            Constant::Bool(b) => Ok(SymValue::Bool(self.pool.konst(b as i64))),
            Constant::Null(_) => Ok(SymValue::Ref(None)),
            Constant::Float(..) => Err(Stop::Unsupported("float constant")),
        }
    }

    fn eval(&mut self, f: &Function, env: &HashMap<ValueId, SymValue>, v: ValueId) -> R<SymValue> {
        match &f.values[v].def {
            ValueDef::Const(c) => self.const_value(*c),
            _ => env.get(&v).cloned().ok_or(Stop::Trap), // unbound value
        }
    }

    fn coll_arg(&mut self, f: &Function, env: &HashMap<ValueId, SymValue>, v: ValueId) -> R<usize> {
        match self.eval(f, env, v)? {
            SymValue::Coll(c) => Ok(c),
            _ => Err(Stop::Trap),
        }
    }

    /// Mirrors `exec_bin` over symbolic operands; `ex` is consulted for
    /// divisor-zero forking.
    fn exec_bin(&mut self, ex: &Exec, op: BinOp, a: &SymValue, b: &SymValue) -> R<SymValue> {
        match (a, b) {
            (SymValue::Int(ta, x), SymValue::Int(_, y)) => {
                if matches!(op, BinOp::Div | BinOp::Rem) {
                    let zero = self.pool.konst(0);
                    let eqz = self.pool.cmp(CmpOp::Eq, false, *y, zero);
                    if self.resolve_bool(ex, eqz)? {
                        return Err(Stop::Trap); // DivByZero
                    }
                }
                let raw = self.pool.bin(op, *x, *y).map_err(|_| Stop::Trap)?;
                Ok(SymValue::Int(*ta, self.pool.trunc(*ta, raw)))
            }
            (SymValue::Bool(x), SymValue::Bool(y)) => match op {
                BinOp::And | BinOp::Or | BinOp::Xor => {
                    // 0/1-valued terms are closed under these.
                    Ok(SymValue::Bool(
                        self.pool.bin(op, *x, *y).map_err(|_| Stop::Trap)?,
                    ))
                }
                _ => Err(Stop::Trap), // arith on bool
            },
            _ => Err(Stop::Trap), // bin operand types
        }
    }

    /// Mirrors `exec_cmp`.
    fn exec_cmp(&mut self, op: CmpOp, a: &SymValue, b: &SymValue) -> R<SymValue> {
        match (a, b) {
            (SymValue::Int(ta, x), SymValue::Int(_, y)) => {
                Ok(SymValue::Bool(self.pool.cmp(op, is_unsigned(*ta), *x, *y)))
            }
            // Booleans compare as 0/1 with signed order.
            (SymValue::Bool(x), SymValue::Bool(y)) => {
                Ok(SymValue::Bool(self.pool.cmp(op, false, *x, *y)))
            }
            (SymValue::Ref(x), SymValue::Ref(y)) => {
                // Identity comparisons are concrete; ordering between
                // allocations is representation-dependent across engines.
                match op {
                    CmpOp::Eq => Ok(SymValue::Bool(self.pool.konst((x == y) as i64))),
                    CmpOp::Ne => Ok(SymValue::Bool(self.pool.konst((x != y) as i64))),
                    _ => Err(Stop::Unsupported("reference ordering")),
                }
            }
            _ => Err(Stop::Trap), // cmp operand types
        }
    }

    /// Mirrors `exec_cast`.
    fn exec_cast(&mut self, to: Type, v: &SymValue) -> R<SymValue> {
        match (to, v) {
            (t, SymValue::Int(_, x)) if t.is_integer() => {
                Ok(SymValue::Int(t, self.pool.trunc(t, *x)))
            }
            // Bool payloads are already 0/1; truncation is the identity.
            (t, SymValue::Bool(b)) if t.is_integer() => Ok(SymValue::Int(t, *b)),
            (Type::Bool, SymValue::Int(_, x)) => {
                let zero = self.pool.konst(0);
                Ok(SymValue::Bool(self.pool.cmp(CmpOp::Ne, false, *x, zero)))
            }
            (t, _) if t.is_float() => Err(Stop::Unsupported("float cast")),
            _ => Err(Stop::Trap), // cast type confusion
        }
    }

    /// Processes the φ-head of `target` as a parallel copy from `pred`,
    /// then positions the frame past the φs.
    fn enter_block(
        &mut self,
        f: &Function,
        frame: &mut Frame,
        pred: BlockId,
        target: BlockId,
    ) -> R<()> {
        let insts = &f.blocks[target].insts;
        let mut updates = Vec::new();
        let mut at = 0;
        for &iid in insts.iter() {
            let inst = &f.insts[iid];
            if let InstKind::Phi { incoming } = &inst.kind {
                let (_, v) = incoming
                    .iter()
                    .find(|(b, _)| *b == pred)
                    .ok_or(Stop::Trap)?; // phi missing incoming
                let val = self.eval(f, &frame.env, *v)?;
                updates.push((inst.results[0], val));
                at += 1;
            } else {
                break;
            }
        }
        for (r, v) in updates {
            frame.env.insert(r, v);
        }
        frame.block = target;
        frame.at = at;
        Ok(())
    }

    fn step(&mut self, ex: &mut Exec) -> Result<StepOut, SymError> {
        match self.step_inner(ex) {
            Ok(out) => Ok(out),
            Err(Stop::Trap) => Ok(StepOut::End(PathEnd::Trap)),
            Err(Stop::Fork(t, vals)) => {
                self.fork_values(ex, t, &vals);
                Ok(StepOut::Forked)
            }
            Err(Stop::BoolFork(t)) => {
                self.fork_bool(ex, t);
                Ok(StepOut::Forked)
            }
            Err(Stop::Unsupported(what)) => Err(SymError::Unsupported(what)),
        }
    }

    /// Executes one instruction of the top frame. Must not mutate
    /// `ex.store` or bind results before the last possible fork point
    /// (forked children re-execute the instruction from a clone of `ex`).
    fn step_inner(&mut self, ex: &mut Exec) -> R<StepOut> {
        use InstKind::*;
        let frame = ex.frames.last().ok_or(Stop::Trap)?;
        let fid = frame.fid;
        let f = &self.module.funcs[fid];
        let iid = *f.blocks[frame.block]
            .insts
            .get(frame.at)
            .ok_or(Stop::Trap)?; // fell off the block: malformed
        let inst = &f.insts[iid];
        let results = inst.results.clone();
        let kind = inst.kind.clone();
        // Local helper: bind results and advance.
        macro_rules! next {
            ($vals:expr) => {{
                let vals: Vec<SymValue> = $vals;
                let frame = ex.frames.last_mut().unwrap();
                for (r, v) in results.iter().zip(vals) {
                    frame.env.insert(*r, v);
                }
                frame.at += 1;
                return Ok(StepOut::Continue);
            }};
        }
        match kind {
            Bin { op, lhs, rhs } => {
                let a = self.eval(f, &frame.env, lhs)?;
                let b = self.eval(f, &frame.env, rhs)?;
                let v = self.exec_bin(ex, op, &a, &b)?;
                next!(vec![v]);
            }
            Cmp { op, lhs, rhs } => {
                let a = self.eval(f, &frame.env, lhs)?;
                let b = self.eval(f, &frame.env, rhs)?;
                let v = self.exec_cmp(op, &a, &b)?;
                next!(vec![v]);
            }
            Cast { to, value } => {
                let v = self.eval(f, &frame.env, value)?;
                let to = self.module.types.get(to);
                let out = self.exec_cast(to, &v)?;
                next!(vec![out]);
            }
            Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = match self.eval(f, &frame.env, cond)? {
                    SymValue::Bool(t) => t,
                    _ => return Err(Stop::Trap),
                };
                let tv = self.eval(f, &frame.env, then_value)?;
                let ev = self.eval(f, &frame.env, else_value)?;
                let out = match (&tv, &ev) {
                    _ if self.pool.as_const(c).is_some() || ex.fixes.contains_key(&c) => {
                        if self.resolve_bool(ex, c)? {
                            tv
                        } else {
                            ev
                        }
                    }
                    (SymValue::Int(ta, x), SymValue::Int(_, y)) => {
                        SymValue::Int(*ta, self.pool.select(c, *x, *y))
                    }
                    (SymValue::Bool(x), SymValue::Bool(y)) => {
                        SymValue::Bool(self.pool.select(c, *x, *y))
                    }
                    // Selecting between heap values needs a concrete
                    // condition: fork.
                    _ => {
                        if self.resolve_bool(ex, c)? {
                            tv
                        } else {
                            ev
                        }
                    }
                };
                next!(vec![out]);
            }
            Phi { .. } => Err(Stop::Trap), // phi outside block head
            Call { callee, args } => {
                let argv: Vec<SymValue> = args
                    .iter()
                    .map(|&a| self.eval(f, &frame.env, a))
                    .collect::<R<_>>()?;
                match callee {
                    Callee::Func(callee_fid) => {
                        let callee_f = &self.module.funcs[callee_fid];
                        let mut argv = argv;
                        // Mut form: by-value collection args are deep
                        // copies (value semantics of the MUT library).
                        if callee_f.form == Form::Mut {
                            for (i, a) in argv.iter_mut().enumerate() {
                                if let (Some(p), SymValue::Coll(c)) =
                                    (callee_f.params.get(i), a.clone())
                                {
                                    if !p.by_ref {
                                        *a = SymValue::Coll(ex.store.clone_coll(c));
                                    }
                                }
                            }
                        }
                        let mut env = HashMap::new();
                        for (i, &pv) in callee_f.param_values.iter().enumerate() {
                            env.insert(pv, argv.get(i).cloned().ok_or(Stop::Trap)?);
                        }
                        ex.frames.push(Frame {
                            fid: callee_fid,
                            block: callee_f.entry,
                            at: 0,
                            env,
                        });
                        Ok(StepOut::Continue)
                    }
                    Callee::Extern(_) => Err(Stop::Unsupported("extern call")),
                }
            }
            Jump { target } => {
                let pred = frame.block;
                let mut fr = ex.frames.last().unwrap().clone();
                self.enter_block(f, &mut fr, pred, target)?;
                *ex.frames.last_mut().unwrap() = fr;
                Ok(StepOut::Continue)
            }
            Branch {
                cond,
                then_target,
                else_target,
            } => {
                let c = match self.eval(f, &frame.env, cond)? {
                    SymValue::Bool(t) => t,
                    _ => return Err(Stop::Trap),
                };
                let pred = frame.block;
                let taken = if self.resolve_bool(ex, c)? {
                    then_target
                } else {
                    else_target
                };
                let mut fr = ex.frames.last().unwrap().clone();
                self.enter_block(f, &mut fr, pred, taken)?;
                *ex.frames.last_mut().unwrap() = fr;
                Ok(StepOut::Continue)
            }
            Ret { values } => {
                let vals: Vec<SymValue> = values
                    .iter()
                    .map(|&v| self.eval(f, &frame.env, v))
                    .collect::<R<_>>()?;
                if ex.frames.len() == 1 {
                    // Entry return: project scalar results to terms.
                    let mut terms = Vec::with_capacity(vals.len());
                    for v in vals {
                        match v {
                            SymValue::Int(_, t) | SymValue::Bool(t) => terms.push(t),
                            _ => return Err(Stop::Unsupported("non-scalar return")),
                        }
                    }
                    return Ok(StepOut::End(PathEnd::Ret(terms)));
                }
                ex.frames.pop();
                // Bind the caller's call-instruction results.
                let frame = ex.frames.last_mut().unwrap();
                let cf = &self.module.funcs[frame.fid];
                let call_iid = cf.blocks[frame.block].insts[frame.at];
                let call_results = cf.insts[call_iid].results.clone();
                for (r, v) in call_results.iter().zip(vals) {
                    frame.env.insert(*r, v);
                }
                frame.at += 1;
                Ok(StepOut::Continue)
            }
            Unreachable => Err(Stop::Trap),

            NewSeq { len, .. } => {
                let lv = self.eval(f, &frame.env, len)?;
                let n = self.resolve_index(ex, &lv)?;
                if n > u16::MAX as u64 {
                    // A concrete interpreter would allocate this; the
                    // symbolic heap refuses absurd sizes.
                    return Err(Stop::Unsupported("huge sequence"));
                }
                let id = ex
                    .store
                    .alloc_coll(SymColl::Seq(vec![SymValue::Uninit; n as usize]));
                next!(vec![SymValue::Coll(id)]);
            }
            NewAssoc { .. } => {
                let id = ex.store.alloc_coll(SymColl::Assoc(Vec::new()));
                next!(vec![SymValue::Coll(id)]);
            }
            NewObj { obj } => {
                let nfields = self.module.types.object(obj).fields.len();
                ex.store.objs.push(SymObj {
                    fields: Some(vec![SymValue::Uninit; nfields]),
                });
                let id = ex.store.objs.len() - 1;
                next!(vec![SymValue::Ref(Some(id))]);
            }
            DeleteObj { obj } => {
                let v = self.eval(f, &frame.env, obj)?;
                match v {
                    SymValue::Ref(Some(id)) => {
                        ex.store.objs[id].fields = None;
                        next!(vec![]);
                    }
                    _ => Err(Stop::Trap), // BadReference
                }
            }

            Read { c, idx } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let v = self.read_element(ex, cid, &iv)?;
                next!(vec![v]);
            }
            Write { c, idx, value } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let vv = self.eval(f, &frame.env, value)?;
                let loc = self.locate_write(ex, cid, &iv)?;
                let copy = ex.store.clone_coll(cid);
                Self::store_at(&mut ex.store, copy, loc, vv);
                next!(vec![SymValue::Coll(copy)]);
            }
            MutWrite { c, idx, value } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let vv = self.eval(f, &frame.env, value)?;
                let loc = self.locate_write(ex, cid, &iv)?;
                Self::store_at(&mut ex.store, cid, loc, vv);
                next!(vec![]);
            }
            Rmw { c, idx, op, value } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let vv = self.eval(f, &frame.env, value)?;
                let old = self.read_element(ex, cid, &iv)?;
                let new = self.exec_bin(ex, op, &old, &vv)?;
                let loc = self.locate_write(ex, cid, &iv)?;
                let copy = ex.store.clone_coll(cid);
                Self::store_at(&mut ex.store, copy, loc, new);
                next!(vec![SymValue::Coll(copy)]);
            }
            MutRmw { c, idx, op, value } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let vv = self.eval(f, &frame.env, value)?;
                let old = self.read_element(ex, cid, &iv)?;
                let new = self.exec_bin(ex, op, &old, &vv)?;
                let loc = self.locate_write(ex, cid, &iv)?;
                Self::store_at(&mut ex.store, cid, loc, new);
                next!(vec![]);
            }
            Insert { c, idx, value } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let vv = match value {
                    Some(v) => Some(self.eval(f, &frame.env, v)?),
                    None => None,
                };
                let ins = self.locate_insert(ex, cid, &iv)?;
                let copy = ex.store.clone_coll(cid);
                Self::insert_at(&mut ex.store, copy, ins, vv);
                next!(vec![SymValue::Coll(copy)]);
            }
            MutInsert { c, idx, value } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let vv = match value {
                    Some(v) => Some(self.eval(f, &frame.env, v)?),
                    None => None,
                };
                let ins = self.locate_insert(ex, cid, &iv)?;
                Self::insert_at(&mut ex.store, cid, ins, vv);
                next!(vec![]);
            }
            InsertSeq { c, idx, src } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let i = self.resolve_index(ex, &iv)?;
                let sid = self.coll_arg(f, &frame.env, src)?;
                let copy = ex.store.clone_coll(cid);
                self.splice(ex, copy, i, sid)?;
                next!(vec![SymValue::Coll(copy)]);
            }
            MutInsertSeq { c, idx, src } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let i = self.resolve_index(ex, &iv)?;
                let sid = self.coll_arg(f, &frame.env, src)?;
                self.splice(ex, cid, i, sid)?;
                next!(vec![]);
            }
            MutAppend { c, src } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let at = ex.store.colls[cid].len() as u64;
                let sid = self.coll_arg(f, &frame.env, src)?;
                self.splice(ex, cid, at, sid)?;
                next!(vec![]);
            }
            Remove { c, idx } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let loc = self.locate_remove(ex, cid, &iv)?;
                let copy = ex.store.clone_coll(cid);
                Self::remove_at(&mut ex.store, copy, loc);
                next!(vec![SymValue::Coll(copy)]);
            }
            MutRemove { c, idx } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let iv = self.eval(f, &frame.env, idx)?;
                let loc = self.locate_remove(ex, cid, &iv)?;
                Self::remove_at(&mut ex.store, cid, loc);
                next!(vec![]);
            }
            RemoveRange { c, from, to } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let (a, b) = self.range_args(ex, f, &frame.env, from, to)?;
                let copy = ex.store.clone_coll(cid);
                self.remove_range(ex, copy, a, b)?;
                next!(vec![SymValue::Coll(copy)]);
            }
            MutRemoveRange { c, from, to } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let (a, b) = self.range_args(ex, f, &frame.env, from, to)?;
                self.remove_range(ex, cid, a, b)?;
                next!(vec![]);
            }
            Copy { c } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let copy = ex.store.clone_coll(cid);
                next!(vec![SymValue::Coll(copy)]);
            }
            CopyRange { c, from, to } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let (a, b) = self.range_args(ex, f, &frame.env, from, to)?;
                let SymColl::Seq(elems) = &ex.store.colls[cid] else {
                    return Err(Stop::Trap); // copy.range on assoc
                };
                let len = elems.len() as u64;
                if a > b || b > len {
                    return Err(Stop::Trap); // OutOfRange
                }
                let slice = elems[a as usize..b as usize].to_vec();
                let id = ex.store.alloc_coll(SymColl::Seq(slice));
                next!(vec![SymValue::Coll(id)]);
            }
            MutSplit { c, from, to } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let (a, b) = self.range_args(ex, f, &frame.env, from, to)?;
                let SymColl::Seq(elems) = &mut ex.store.colls[cid] else {
                    return Err(Stop::Trap); // split on assoc
                };
                let len = elems.len() as u64;
                if a > b || b > len {
                    return Err(Stop::Trap); // OutOfRange
                }
                let split: Vec<SymValue> = elems.drain(a as usize..b as usize).collect();
                let id = ex.store.alloc_coll(SymColl::Seq(split));
                next!(vec![SymValue::Coll(id)]);
            }
            Swap { c, from, to, at } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let (a, b) = self.range_args(ex, f, &frame.env, from, to)?;
                let kv = self.eval(f, &frame.env, at)?;
                let k = self.resolve_index(ex, &kv)?;
                let copy = ex.store.clone_coll(cid);
                self.swap_ranges(ex, copy, a, b, k)?;
                next!(vec![SymValue::Coll(copy)]);
            }
            MutSwap { c, from, to, at } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let (a, b) = self.range_args(ex, f, &frame.env, from, to)?;
                let kv = self.eval(f, &frame.env, at)?;
                let k = self.resolve_index(ex, &kv)?;
                self.swap_ranges(ex, cid, a, b, k)?;
                next!(vec![]);
            }
            Swap2 { a, from, to, b, at } => {
                let aid = self.coll_arg(f, &frame.env, a)?;
                let bid = self.coll_arg(f, &frame.env, b)?;
                let (x, y) = self.range_args(ex, f, &frame.env, from, to)?;
                let kv = self.eval(f, &frame.env, at)?;
                let k = self.resolve_index(ex, &kv)?;
                let ca = ex.store.clone_coll(aid);
                let cb = ex.store.clone_coll(bid);
                self.swap_across(ex, ca, cb, x, y, k)?;
                next!(vec![SymValue::Coll(ca), SymValue::Coll(cb)]);
            }
            MutSwap2 { a, from, to, b, at } => {
                let aid = self.coll_arg(f, &frame.env, a)?;
                let bid = self.coll_arg(f, &frame.env, b)?;
                let (x, y) = self.range_args(ex, f, &frame.env, from, to)?;
                let kv = self.eval(f, &frame.env, at)?;
                let k = self.resolve_index(ex, &kv)?;
                self.swap_across(ex, aid, bid, x, y, k)?;
                next!(vec![]);
            }
            Size { c } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let n = ex.store.colls[cid].len() as i64;
                let t = self.pool.konst(n);
                next!(vec![SymValue::Int(Type::Index, t)]);
            }
            Has { c, key } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let kv = self.eval(f, &frame.env, key)?;
                let k = self.resolve_key(ex, &kv)?;
                let SymColl::Assoc(entries) = &ex.store.colls[cid] else {
                    return Err(Stop::Trap); // has on sequence
                };
                let present = entries.iter().any(|(ek, _)| *ek == k);
                let t = self.pool.konst(present as i64);
                next!(vec![SymValue::Bool(t)]);
            }
            Keys { c } => {
                let cid = self.coll_arg(f, &frame.env, c)?;
                let key_ty = match self.module.types.get(f.value_ty(c)) {
                    Type::Assoc(k, _) => self.module.types.get(k),
                    _ => return Err(Stop::Trap), // keys on sequence
                };
                let SymColl::Assoc(entries) = &ex.store.colls[cid] else {
                    return Err(Stop::Trap);
                };
                let keys: Vec<SymKey> = entries.iter().map(|(k, _)| k.clone()).collect();
                let elems: Vec<SymValue> = keys
                    .into_iter()
                    .map(|k| match k {
                        SymKey::Int(x) => SymValue::Int(key_ty, self.pool.konst(x)),
                        SymKey::Bool(b) => SymValue::Bool(self.pool.konst(b as i64)),
                        SymKey::Ref(o) => SymValue::Ref(o),
                    })
                    .collect();
                let id = ex.store.alloc_coll(SymColl::Seq(elems));
                next!(vec![SymValue::Coll(id)]);
            }
            UsePhi { c } => {
                let v = self.eval(f, &frame.env, c)?;
                next!(vec![v]);
            }
            FieldRead { obj, field, .. } => {
                let v = self.eval(f, &frame.env, obj)?;
                let SymValue::Ref(Some(id)) = v else {
                    return Err(Stop::Trap); // BadReference
                };
                let fields = ex.store.objs[id].fields.as_ref().ok_or(Stop::Trap)?;
                let fv = fields[field as usize].clone();
                if fv == SymValue::Uninit {
                    return Err(Stop::Trap); // ReadUninit
                }
                next!(vec![fv]);
            }
            FieldWrite {
                obj, field, value, ..
            } => {
                let v = self.eval(f, &frame.env, obj)?;
                let fv = self.eval(f, &frame.env, value)?;
                let SymValue::Ref(Some(id)) = v else {
                    return Err(Stop::Trap);
                };
                let fields = ex.store.objs[id].fields.as_mut().ok_or(Stop::Trap)?;
                fields[field as usize] = fv;
                next!(vec![]);
            }
        }
    }

    fn range_args(
        &mut self,
        ex: &Exec,
        f: &Function,
        env: &HashMap<ValueId, SymValue>,
        from: ValueId,
        to: ValueId,
    ) -> R<(u64, u64)> {
        let fv = self.eval(f, env, from)?;
        let a = self.resolve_index(ex, &fv)?;
        let tv = self.eval(f, env, to)?;
        let b = self.resolve_index(ex, &tv)?;
        Ok((a, b))
    }

    /// Where a write would land; resolves indices/keys (possibly forking)
    /// *before* any mutation.
    fn locate_write(&mut self, ex: &Exec, cid: usize, idx: &SymValue) -> R<WriteLoc> {
        match &ex.store.colls[cid] {
            SymColl::Seq(elems) => {
                let i = self.resolve_index(ex, idx)?;
                if (i as usize) < elems.len() {
                    Ok(WriteLoc::SeqAt(i as usize))
                } else {
                    Err(Stop::Trap) // OutOfRange
                }
            }
            SymColl::Assoc(_) => {
                let k = self.resolve_key(ex, idx)?;
                Ok(WriteLoc::AssocKey(k))
            }
        }
    }

    fn locate_insert(&mut self, ex: &Exec, cid: usize, idx: &SymValue) -> R<WriteLoc> {
        match &ex.store.colls[cid] {
            SymColl::Seq(elems) => {
                let i = self.resolve_index(ex, idx)?;
                if i as usize > elems.len() {
                    Err(Stop::Trap) // OutOfRange (i > len)
                } else {
                    Ok(WriteLoc::SeqAt(i as usize))
                }
            }
            SymColl::Assoc(_) => {
                let k = self.resolve_key(ex, idx)?;
                Ok(WriteLoc::AssocKey(k))
            }
        }
    }

    fn locate_remove(&mut self, ex: &Exec, cid: usize, idx: &SymValue) -> R<WriteLoc> {
        match &ex.store.colls[cid] {
            SymColl::Seq(elems) => {
                let i = self.resolve_index(ex, idx)?;
                if (i as usize) < elems.len() {
                    Ok(WriteLoc::SeqAt(i as usize))
                } else {
                    Err(Stop::Trap) // OutOfRange (i >= len)
                }
            }
            SymColl::Assoc(entries) => {
                let k = self.resolve_key(ex, idx)?;
                if entries.iter().any(|(ek, _)| *ek == k) {
                    Ok(WriteLoc::AssocKey(k))
                } else {
                    Err(Stop::Trap) // MissingKey
                }
            }
        }
    }

    fn store_at(store: &mut SymStore, cid: usize, loc: WriteLoc, v: SymValue) {
        match (&mut store.colls[cid], loc) {
            (SymColl::Seq(elems), WriteLoc::SeqAt(i)) => elems[i] = v,
            (SymColl::Assoc(entries), WriteLoc::AssocKey(k)) => {
                if let Some(e) = entries.iter_mut().find(|(ek, _)| *ek == k) {
                    e.1 = v;
                } else {
                    entries.push((k, v));
                }
            }
            _ => unreachable!("write location shape"),
        }
    }

    fn insert_at(store: &mut SymStore, cid: usize, loc: WriteLoc, v: Option<SymValue>) {
        let v = v.unwrap_or(SymValue::Uninit);
        match (&mut store.colls[cid], loc) {
            (SymColl::Seq(elems), WriteLoc::SeqAt(i)) => elems.insert(i, v),
            (SymColl::Assoc(entries), WriteLoc::AssocKey(k)) => {
                if let Some(e) = entries.iter_mut().find(|(ek, _)| *ek == k) {
                    e.1 = v;
                } else {
                    entries.push((k, v));
                }
            }
            _ => unreachable!("insert location shape"),
        }
    }

    fn remove_at(store: &mut SymStore, cid: usize, loc: WriteLoc) {
        match (&mut store.colls[cid], loc) {
            (SymColl::Seq(elems), WriteLoc::SeqAt(i)) => {
                elems.remove(i);
            }
            (SymColl::Assoc(entries), WriteLoc::AssocKey(k)) => {
                entries.retain(|(ek, _)| *ek != k);
            }
            _ => unreachable!("remove location shape"),
        }
    }

    /// Mirrors `read_element` (present + initialized, or trap).
    fn read_element(&mut self, ex: &Exec, cid: usize, idx: &SymValue) -> R<SymValue> {
        match &ex.store.colls[cid] {
            SymColl::Seq(elems) => {
                let i = self.resolve_index(ex, idx)?;
                let v = elems.get(i as usize).cloned().ok_or(Stop::Trap)?;
                if v == SymValue::Uninit {
                    return Err(Stop::Trap); // ReadUninit
                }
                Ok(v)
            }
            SymColl::Assoc(entries) => {
                let k = self.resolve_key(ex, idx)?;
                let v = entries
                    .iter()
                    .find(|(ek, _)| *ek == k)
                    .map(|(_, v)| v.clone())
                    .ok_or(Stop::Trap)?; // MissingKey
                if v == SymValue::Uninit {
                    return Err(Stop::Trap);
                }
                Ok(v)
            }
        }
    }

    fn remove_range(&mut self, ex: &mut Exec, cid: usize, from: u64, to: u64) -> R<()> {
        let SymColl::Seq(elems) = &mut ex.store.colls[cid] else {
            return Err(Stop::Trap);
        };
        let len = elems.len() as u64;
        if from > to || to > len {
            return Err(Stop::Trap);
        }
        elems.drain(from as usize..to as usize);
        Ok(())
    }

    fn splice(&mut self, ex: &mut Exec, dst: usize, at: u64, src: usize) -> R<()> {
        let src_elems = match &ex.store.colls[src] {
            SymColl::Seq(e) => e.clone(),
            _ => return Err(Stop::Trap),
        };
        let SymColl::Seq(elems) = &mut ex.store.colls[dst] else {
            return Err(Stop::Trap);
        };
        if at > elems.len() as u64 {
            return Err(Stop::Trap);
        }
        elems.splice(at as usize..at as usize, src_elems);
        Ok(())
    }

    fn swap_ranges(&mut self, ex: &mut Exec, cid: usize, from: u64, to: u64, at: u64) -> R<()> {
        let SymColl::Seq(elems) = &mut ex.store.colls[cid] else {
            return Err(Stop::Trap);
        };
        let len = elems.len() as u64;
        let width = to.checked_sub(from).ok_or(Stop::Trap)?;
        if to > len || at + width > len {
            return Err(Stop::Trap);
        }
        for k in 0..width {
            elems.swap((from + k) as usize, (at + k) as usize);
        }
        Ok(())
    }

    fn swap_across(
        &mut self,
        ex: &mut Exec,
        a: usize,
        b: usize,
        from: u64,
        to: u64,
        at: u64,
    ) -> R<()> {
        if a == b {
            return self.swap_ranges(ex, a, from, to, at);
        }
        let width = to.checked_sub(from).ok_or(Stop::Trap)?;
        // Take both out to sidestep the split borrow.
        let mut ca = std::mem::replace(&mut ex.store.colls[a], SymColl::Seq(Vec::new()));
        let mut cb = std::mem::replace(&mut ex.store.colls[b], SymColl::Seq(Vec::new()));
        let result = (|| {
            let (SymColl::Seq(ea), SymColl::Seq(eb)) = (&mut ca, &mut cb) else {
                return Err(Stop::Trap);
            };
            if to > ea.len() as u64 || at + width > eb.len() as u64 {
                return Err(Stop::Trap);
            }
            for k in 0..width {
                std::mem::swap(&mut ea[(from + k) as usize], &mut eb[(at + k) as usize]);
            }
            Ok(())
        })();
        ex.store.colls[a] = ca;
        ex.store.colls[b] = cb;
        result
    }
}

enum WriteLoc {
    SeqAt(usize),
    AssocKey(SymKey),
}

/// The concrete prediction of a symbolic summary on given arguments: the
/// unique feasible path's return terms evaluated under `args`, or `None`
/// when the path traps / no path matches. Used by the oracle-soundness
/// checks (`sym-unsound` detection).
pub fn predict(pool: &TermPool, paths: &[Path], args: &[i64]) -> Option<Result<Vec<i64>, ()>> {
    for p in paths {
        let matches = p.cond.iter().all(|&(t, truth)| {
            pool.eval(t, args)
                .map(|v| (v != 0) == truth)
                // A trap while evaluating the condition means the path
                // prefix itself traps; the path is not taken.
                .unwrap_or(false)
        });
        if !matches {
            continue;
        }
        return Some(match &p.end {
            PathEnd::Trap => Err(()),
            PathEnd::Ret(terms) => {
                let mut out = Vec::with_capacity(terms.len());
                for &t in terms {
                    match pool.eval(t, args) {
                        Some(v) => out.push(v),
                        None => return Some(Err(())),
                    }
                }
                Ok(out)
            }
        });
    }
    None
}

/// Seeds a pool with a function's parameter types (must all be scalar
/// integers or bools). Returns `None` when the signature is ineligible.
pub fn seed_params(module: &Module, fid: FuncId) -> Option<TermPool> {
    let f = &module.funcs[fid];
    let mut pool = TermPool::new();
    for p in &f.params {
        let ty = module.types.get(p.ty);
        if !(ty.is_integer() || ty == Type::Bool) {
            return None;
        }
        pool.param_tys.push(ty);
    }
    for rt in &f.ret_tys {
        let ty = module.types.get(*rt);
        if !(ty.is_integer() || ty == Type::Bool) {
            return None;
        }
    }
    Some(pool)
}

/// Parameter domains matching the typed-probe synthesizer: used to keep
/// witness search inside values both IRs agree on.
pub fn param_domains(pool: &TermPool) -> Vec<(i64, i64)> {
    pool.param_tys.iter().map(|&t| type_domain(t)).collect()
}
