//! The in-tree path-condition solver: interval and congruence
//! propagation plus structural (dis)equality — deliberately *not* an SMT
//! solver. It answers two questions about a conjunction of literals
//! (terms asserted non-zero or zero):
//!
//! * [`contradicts`] — is the conjunction *definitely* infeasible? Sound
//!   in one direction only: `true` means no assignment satisfies it;
//!   `false` means "maybe feasible".
//! * [`find_model`] — a best-effort concrete parameter assignment
//!   satisfying the conjunction, used to *refute* equivalence with a
//!   witness (which is then confirmed on the concrete interpreters, so
//!   incompleteness here can never produce a false bug report).

use crate::term::{type_domain, Term, TermId, TermPool};
use memoir_ir::{BinOp, CmpOp};
use std::collections::HashMap;

/// A literal: the term asserted non-zero (`true`) or zero (`false`).
pub type Lit = (TermId, bool);

/// An inclusive interval over `i64`, tracked in `i128` so arithmetic on
/// the bounds cannot overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Interval {
    /// The full `i64` domain.
    pub fn full() -> Self {
        Interval {
            lo: i64::MIN as i128,
            hi: i64::MAX as i128,
        }
    }

    /// A singleton.
    pub fn point(v: i64) -> Self {
        Interval {
            lo: v as i128,
            hi: v as i128,
        }
    }

    /// Whether no value is left.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    fn meet(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    fn in_i64(self) -> bool {
        self.lo >= i64::MIN as i128 && self.hi <= i64::MAX as i128
    }
}

/// A congruence `value ≡ rem (mod modulus)`; `modulus == 1` is "anything".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Congruence {
    /// The modulus (`≥ 1`).
    pub modulus: u64,
    /// The canonical residue in `0 .. modulus`.
    pub rem: u64,
}

impl Congruence {
    fn any() -> Self {
        Congruence { modulus: 1, rem: 0 }
    }

    fn point(v: i64) -> Self {
        Congruence {
            modulus: 0,
            rem: v as u64,
        }
    }

    /// Residue of `v` for this congruence's modulus.
    fn residue(modulus: u64, v: i64) -> u64 {
        (v as i128).rem_euclid(modulus as i128) as u64
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The solver state for one conjunction.
#[derive(Debug)]
pub struct Solver<'p> {
    pool: &'p TermPool,
    /// Narrowed intervals for atom terms (params and opaque nodes).
    atom_iv: HashMap<TermId, Interval>,
}

impl<'p> Solver<'p> {
    /// Creates a solver over a pool; parameter atoms start at their
    /// declared type domains.
    pub fn new(pool: &'p TermPool) -> Self {
        let mut atom_iv = HashMap::new();
        for (i, node) in (0u32..).zip(0..pool.len()) {
            if let Term::Param(p) = pool.get(TermId(node as u32)) {
                let (lo, hi) = pool
                    .param_tys
                    .get(*p as usize)
                    .copied()
                    .map(type_domain)
                    .unwrap_or((i64::MIN, i64::MAX));
                atom_iv.insert(
                    TermId(i),
                    Interval {
                        lo: lo as i128,
                        hi: hi as i128,
                    },
                );
            }
        }
        Solver { pool, atom_iv }
    }

    /// Structural interval of a term under the current atom narrowing.
    pub fn interval(&self, t: TermId) -> Interval {
        if let Some(iv) = self.atom_iv.get(&t) {
            return *iv;
        }
        match self.pool.get(t) {
            Term::Const(v) => Interval::point(*v),
            Term::Param(_) => Interval::full(),
            Term::Bin(op, a, b) => {
                let (ia, ib) = (self.interval(*a), self.interval(*b));
                let wide = match op {
                    BinOp::Add => Interval {
                        lo: ia.lo + ib.lo,
                        hi: ia.hi + ib.hi,
                    },
                    BinOp::Sub => Interval {
                        lo: ia.lo - ib.hi,
                        hi: ia.hi - ib.lo,
                    },
                    BinOp::Mul => {
                        let cands = [ia.lo * ib.lo, ia.lo * ib.hi, ia.hi * ib.lo, ia.hi * ib.hi];
                        Interval {
                            lo: *cands.iter().min().unwrap(),
                            hi: *cands.iter().max().unwrap(),
                        }
                    }
                    BinOp::Min => Interval {
                        lo: ia.lo.min(ib.lo),
                        hi: ia.hi.min(ib.hi),
                    },
                    BinOp::Max => Interval {
                        lo: ia.lo.max(ib.lo),
                        hi: ia.hi.max(ib.hi),
                    },
                    BinOp::And => match self.pool.as_const(*b).or(self.pool.as_const(*a)) {
                        Some(m) if m >= 0 => Interval {
                            lo: 0,
                            hi: m as i128,
                        },
                        _ => Interval::full(),
                    },
                    BinOp::Rem => match self.pool.as_const(*b) {
                        // Non-negative dividend: wrapping_rem keeps the
                        // dividend's sign, so the result is in [0, |c|).
                        Some(c) if c != 0 && ia.lo >= 0 => Interval {
                            lo: 0,
                            hi: (c.unsigned_abs() as i128) - 1,
                        },
                        _ => Interval::full(),
                    },
                    _ => Interval::full(),
                };
                // Wrapping arithmetic: a bound outside i64 means the
                // concrete op may wrap, so the interval is unusable.
                if wide.in_i64() {
                    wide
                } else {
                    Interval::full()
                }
            }
            Term::Cmp(..) => Interval { lo: 0, hi: 1 },
            Term::Trunc(ty, _) => {
                let (lo, hi) = type_domain(*ty);
                Interval {
                    lo: lo as i128,
                    hi: hi as i128,
                }
            }
            Term::Select(_, a, b) => {
                let (ia, ib) = (self.interval(*a), self.interval(*b));
                Interval {
                    lo: ia.lo.min(ib.lo),
                    hi: ia.hi.max(ib.hi),
                }
            }
        }
    }

    /// Whether `a op b` provably cannot wrap under the current atom
    /// narrowing: the wide-interval result stays within `i64`.
    /// Wrapping adds a multiple of 2^64 to the true integer result,
    /// which preserves residues only for power-of-two moduli — so
    /// non-power-of-two congruences are only sound under this guard.
    fn no_wrap(&self, op: BinOp, a: TermId, b: TermId) -> bool {
        let (ia, ib) = (self.interval(a), self.interval(b));
        let wide = match op {
            BinOp::Add => Interval {
                lo: ia.lo + ib.lo,
                hi: ia.hi + ib.hi,
            },
            BinOp::Sub => Interval {
                lo: ia.lo - ib.hi,
                hi: ia.hi - ib.lo,
            },
            BinOp::Mul => {
                let cands = [ia.lo * ib.lo, ia.lo * ib.hi, ia.hi * ib.lo, ia.hi * ib.hi];
                Interval {
                    lo: *cands.iter().min().unwrap(),
                    hi: *cands.iter().max().unwrap(),
                }
            }
            _ => return false,
        };
        wide.in_i64()
    }

    /// Structural congruence of a term.
    pub fn congruence(&self, t: TermId) -> Congruence {
        match self.pool.get(t) {
            Term::Const(v) => Congruence::point(*v),
            Term::Bin(op, a, b) => {
                let (ca, cb) = (self.congruence(*a), self.congruence(*b));
                match op {
                    BinOp::Add | BinOp::Sub => {
                        if ca.modulus == 0 && cb.modulus == 0 {
                            return Congruence::any(); // folded already
                        }
                        let m = match (ca.modulus, cb.modulus) {
                            (0, m) | (m, 0) => m,
                            (x, y) => gcd(x, y),
                        };
                        if m <= 1 {
                            return Congruence::any();
                        }
                        if !m.is_power_of_two() && !self.no_wrap(*op, *a, *b) {
                            return Congruence::any(); // a wrap would shift the residue
                        }
                        let ra = if ca.modulus == 0 {
                            Congruence::residue(m, ca.rem as i64)
                        } else {
                            ca.rem % m
                        };
                        let rb = if cb.modulus == 0 {
                            Congruence::residue(m, cb.rem as i64)
                        } else {
                            cb.rem % m
                        };
                        let r = match op {
                            BinOp::Add => (ra + rb) % m,
                            _ => (ra + m - rb % m) % m,
                        };
                        Congruence { modulus: m, rem: r }
                    }
                    BinOp::Mul => {
                        // x * c is ≡ 0 (mod |c|) in the integers, but the
                        // term wraps mod 2^64: the residue survives the
                        // wrap only when |c| divides 2^64 (|c| a power of
                        // two) or the product provably stays in range.
                        let c = self.pool.as_const(*a).or(self.pool.as_const(*b));
                        match c {
                            Some(c)
                                if c.unsigned_abs() > 1
                                    && (c.unsigned_abs().is_power_of_two()
                                        || self.no_wrap(BinOp::Mul, *a, *b)) =>
                            {
                                Congruence {
                                    modulus: c.unsigned_abs(),
                                    rem: 0,
                                }
                            }
                            _ => Congruence::any(),
                        }
                    }
                    BinOp::Shl => match self.pool.as_const(*b) {
                        Some(s) if (1..63).contains(&s) => Congruence {
                            modulus: 1u64 << s,
                            rem: 0,
                        },
                        _ => Congruence::any(),
                    },
                    _ => Congruence::any(),
                }
            }
            _ => Congruence::any(),
        }
    }

    fn narrow_atom(&mut self, t: TermId, iv: Interval) {
        let cur = self.atom_iv.get(&t).copied().unwrap_or_else(Interval::full);
        self.atom_iv.insert(t, cur.meet(iv));
    }

    /// Absorbs one literal, narrowing atom intervals where the literal
    /// has the shape `atom OP const` (or a negation of one).
    fn absorb(&mut self, lit: Lit) {
        let (t, truth) = lit;
        if let Term::Cmp(op, unsigned, a, b) = self.pool.get(t) {
            let (op, unsigned) = (if truth { *op } else { op.negated() }, *unsigned);
            let (a, b) = (*a, *b);
            if let Some(c) = self.pool.as_const(b) {
                self.narrow_with(op, unsigned, a, c);
            } else if let Some(c) = self.pool.as_const(a) {
                self.narrow_with(op.swapped(), unsigned, b, c);
            }
        } else {
            // A non-comparison condition: `t != 0` / `t == 0`.
            if truth {
                // != 0 doesn't narrow an interval usefully.
            } else {
                self.narrow_atom(t, Interval::point(0));
            }
        }
    }

    fn narrow_with(&mut self, op: CmpOp, unsigned: bool, t: TermId, c: i64) {
        if unsigned {
            // An unsigned ordering against a constant narrows the i64
            // word interval only when its true set is contiguous in the
            // signed view: `<u c` / `<=u c` with `c >= 0` pin the word
            // to [0, c-1] / [0, c] (every negative word is >u i64::MAX),
            // and equality is bit-pattern equality, signedness-blind.
            // `>u` / `>=u` (and negative bounds) admit negative words
            // alongside non-negative ones, so they must not narrow.
            let iv = match op {
                CmpOp::Eq => Interval::point(c),
                CmpOp::Lt if c >= 0 => Interval {
                    lo: 0,
                    hi: c as i128 - 1,
                },
                CmpOp::Le if c >= 0 => Interval {
                    lo: 0,
                    hi: c as i128,
                },
                _ => return,
            };
            self.narrow_atom(t, iv);
            return;
        }
        let c = c as i128;
        let iv = match op {
            CmpOp::Eq => Interval { lo: c, hi: c },
            CmpOp::Lt => Interval {
                lo: i64::MIN as i128,
                hi: c - 1,
            },
            CmpOp::Le => Interval {
                lo: i64::MIN as i128,
                hi: c,
            },
            CmpOp::Gt => Interval {
                lo: c + 1,
                hi: i64::MAX as i128,
            },
            CmpOp::Ge => Interval {
                lo: c,
                hi: i64::MAX as i128,
            },
            CmpOp::Ne => return, // no contiguous narrowing
        };
        self.narrow_atom(t, iv);
    }

    /// Whether the conjunction is *definitely* infeasible.
    pub fn contradicts(&mut self, lits: &[Lit]) -> bool {
        // Structural complement: the same term asserted both ways.
        for (i, &(t, v)) in lits.iter().enumerate() {
            for &(u, w) in &lits[i + 1..] {
                if t == u && v != w {
                    return true;
                }
            }
        }
        // Two passes so a later literal's narrowing feeds an earlier
        // literal's check.
        for &l in lits {
            self.absorb(l);
        }
        for &(t, truth) in lits {
            // Constant literal already decided.
            if let Some(v) = self.pool.as_const(t) {
                if (v != 0) != truth {
                    return true;
                }
                continue;
            }
            if let Term::Cmp(op, unsigned, a, b) = self.pool.get(t) {
                let op = if truth { *op } else { op.negated() };
                if *unsigned {
                    // Unsigned ordering only matches interval reasoning
                    // when both sides are known non-negative.
                    let (ia, ib) = (self.interval(*a), self.interval(*b));
                    if ia.lo < 0 || ib.lo < 0 {
                        continue;
                    }
                }
                let (ia, ib) = (self.interval(*a), self.interval(*b));
                let possible = match op {
                    CmpOp::Eq => ia.lo <= ib.hi && ib.lo <= ia.hi,
                    CmpOp::Ne => !(ia.lo == ia.hi && ib.lo == ib.hi && ia.lo == ib.lo),
                    CmpOp::Lt => ia.lo < ib.hi,
                    CmpOp::Le => ia.lo <= ib.hi,
                    CmpOp::Gt => ia.hi > ib.lo,
                    CmpOp::Ge => ia.hi >= ib.lo,
                };
                if !possible {
                    return true;
                }
                // Congruence refutation of equalities.
                if op == CmpOp::Eq {
                    let (ca, cb) = (self.congruence(*a), self.congruence(*b));
                    let m = match (ca.modulus, cb.modulus) {
                        (0, 0) => 0,
                        (0, m) | (m, 0) => m,
                        (x, y) => gcd(x, y),
                    };
                    if m > 1 {
                        let ra = if ca.modulus == 0 {
                            Congruence::residue(m, ca.rem as i64)
                        } else {
                            ca.rem % m
                        };
                        let rb = if cb.modulus == 0 {
                            Congruence::residue(m, cb.rem as i64)
                        } else {
                            cb.rem % m
                        };
                        if ra != rb {
                            return true;
                        }
                    }
                }
            } else {
                // `t != 0` with a zero-only interval (or vice versa).
                let iv = self.interval(t);
                if truth && iv.lo == 0 && iv.hi == 0 {
                    return true;
                }
                if !truth && (iv.lo > 0 || iv.hi < 0) {
                    return true;
                }
            }
        }
        false
    }
}

/// Convenience: one-shot infeasibility check.
pub fn contradicts(pool: &TermPool, lits: &[Lit]) -> bool {
    Solver::new(pool).contradicts(lits)
}

/// One-shot interval of `t` under a path condition (used by the engines to
/// decide whether a symbolic index is narrow enough to fork over).
pub fn interval_under(pool: &TermPool, lits: &[Lit], t: TermId) -> Interval {
    let mut s = Solver::new(pool);
    for &l in lits {
        s.absorb(l);
    }
    s.interval(t)
}

/// Best-effort model search: a concrete assignment of every parameter
/// that satisfies the conjunction, or `None`. Bounded enumeration over
/// boundary candidates of each parameter's narrowed interval.
pub fn find_model(pool: &TermPool, lits: &[Lit]) -> Option<Vec<i64>> {
    let nparams = pool.param_tys.len();
    let mut solver = Solver::new(pool);
    for &l in lits {
        solver.absorb(l);
    }
    // Candidate values per parameter: interval boundaries plus small
    // values that fall inside.
    let mut cands: Vec<Vec<i64>> = Vec::with_capacity(nparams);
    for i in 0..nparams {
        let pid = find_param_term(pool, i as u32);
        let iv = match pid {
            Some(t) => solver.interval(t),
            None => Interval::full(),
        };
        let mut c: Vec<i64> = Vec::new();
        for v in [
            iv.lo,
            iv.hi,
            0,
            1,
            2,
            -1,
            3,
            iv.lo + 1,
            iv.hi - 1,
            (iv.lo + iv.hi) / 2,
        ] {
            if v >= iv.lo && v <= iv.hi && v >= i64::MIN as i128 && v <= i64::MAX as i128 {
                let v = v as i64;
                if !c.contains(&v) {
                    c.push(v);
                }
            }
        }
        if c.is_empty() {
            return None; // empty domain
        }
        cands.push(c);
    }
    // Bounded cartesian search.
    let mut budget = 4096usize;
    let mut asg = vec![0i64; nparams];
    search(pool, lits, &cands, 0, &mut asg, &mut budget)
}

fn find_param_term(pool: &TermPool, i: u32) -> Option<TermId> {
    (0..pool.len() as u32)
        .map(TermId)
        .find(|&t| matches!(pool.get(t), Term::Param(p) if *p == i))
}

fn search(
    pool: &TermPool,
    lits: &[Lit],
    cands: &[Vec<i64>],
    at: usize,
    asg: &mut Vec<i64>,
    budget: &mut usize,
) -> Option<Vec<i64>> {
    if *budget == 0 {
        return None;
    }
    if at == cands.len() {
        *budget -= 1;
        let sat = lits.iter().all(|&(t, truth)| {
            pool.eval(t, asg)
                .map(|v| (v != 0) == truth)
                .unwrap_or(false)
        });
        return sat.then(|| asg.clone());
    }
    for &v in &cands[at] {
        asg[at] = v;
        if let Some(m) = search(pool, lits, cands, at + 1, asg, budget) {
            return Some(m);
        }
        if *budget == 0 {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::Type;

    fn pool2() -> TermPool {
        let mut p = TermPool::new();
        p.param_tys = vec![Type::I64, Type::I64];
        p.param(0);
        p.param(1);
        p
    }

    #[test]
    fn complementary_literals_contradict() {
        let mut p = pool2();
        let x = p.param(0);
        let y = p.param(1);
        let c = p.cmp(CmpOp::Lt, false, x, y);
        assert!(contradicts(&p, &[(c, true), (c, false)]));
        assert!(!contradicts(&p, &[(c, true)]));
    }

    #[test]
    fn interval_narrowing_contradicts() {
        let mut p = pool2();
        let x = p.param(0);
        let five = p.konst(5);
        let three = p.konst(3);
        let lt3 = p.cmp(CmpOp::Lt, false, x, three);
        let gt5 = p.cmp(CmpOp::Gt, false, x, five);
        assert!(contradicts(&p, &[(lt3, true), (gt5, true)]));
        assert!(!contradicts(&p, &[(lt3, true), (gt5, false)]));
    }

    #[test]
    fn congruence_refutes_parity() {
        let mut p = pool2();
        let x = p.param(0);
        let two = p.konst(2);
        let seven = p.konst(7);
        let even = p.bin(BinOp::Mul, x, two).unwrap();
        let eq = p.cmp(CmpOp::Eq, false, even, seven);
        assert!(contradicts(&p, &[(eq, true)]), "2x == 7 is impossible");
    }

    #[test]
    fn mul_congruence_respects_wrapping() {
        // 3x == 7 IS satisfiable under wrapping_mul (x = 7 * 3^-1 mod
        // 2^64), so a full-domain multiply by a non-power-of-two must
        // not produce a congruence refutation.
        let mut p = pool2();
        let x = p.param(0);
        let three = p.konst(3);
        let seven = p.konst(7);
        let trip = p.bin(BinOp::Mul, x, three).unwrap();
        let eq = p.cmp(CmpOp::Eq, false, trip, seven);
        assert!(!contradicts(&p, &[(eq, true)]), "3x == 7 wraps to a model");
    }

    #[test]
    fn mul_congruence_applies_when_no_wrap() {
        // With x confined to the Index window the product cannot wrap,
        // so the integer congruence is sound and 3x == 7 is refuted.
        let mut p = TermPool::new();
        p.param_tys = vec![Type::Index];
        let x = p.param(0);
        let three = p.konst(3);
        let seven = p.konst(7);
        let trip = p.bin(BinOp::Mul, x, three).unwrap();
        let eq = p.cmp(CmpOp::Eq, false, trip, seven);
        assert!(contradicts(&p, &[(eq, true)]), "no wrap: 3x == 7 refuted");
    }

    #[test]
    fn unsigned_gt_does_not_narrow_signed_interval() {
        // `d >u 5` is satisfied by every negative word, so it must not
        // narrow d to [6, i64::MAX]: together with `d < 0` (signed) the
        // conjunction is satisfiable (e.g. d = -1 at x=0, y=1).
        let mut p = pool2();
        let x = p.param(0);
        let y = p.param(1);
        let d = p.bin(BinOp::Sub, x, y).unwrap();
        let five = p.konst(5);
        let zero = p.konst(0);
        let ugt = p.cmp(CmpOp::Gt, true, d, five);
        let neg = p.cmp(CmpOp::Lt, false, d, zero);
        assert!(!contradicts(&p, &[(ugt, true), (neg, true)]));
        // Negated unsigned `<u` / `<=u` land on `>=u` / `>u` and must
        // not narrow either: `!(d <u 5)` admits d = -1 as well.
        let ult = p.cmp(CmpOp::Lt, true, d, five);
        assert!(!contradicts(&p, &[(ult, false), (neg, true)]));
    }

    #[test]
    fn unsigned_lt_narrows_to_nonnegative_window() {
        // `x <u 5` does pin the word to [0, 4], so `x == 10` is refuted.
        let mut p = pool2();
        let x = p.param(0);
        let five = p.konst(5);
        let ten = p.konst(10);
        let ult = p.cmp(CmpOp::Lt, true, x, five);
        let eq10 = p.cmp(CmpOp::Eq, false, x, ten);
        assert!(contradicts(&p, &[(ult, true), (eq10, true)]));
        // ... but `x <u -1` (-1 is u64::MAX) keeps negative words in
        // play and must not pin x non-negative.
        let m1 = p.konst(-1);
        let m2 = p.konst(-2);
        let ultm1 = p.cmp(CmpOp::Lt, true, x, m1);
        let eqm2 = p.cmp(CmpOp::Eq, false, x, m2);
        assert!(!contradicts(&p, &[(ultm1, true), (eqm2, true)]));
    }

    #[test]
    fn unsigned_comparison_needs_nonnegative_sides() {
        let mut p = TermPool::new();
        p.param_tys = vec![Type::I64];
        let x = p.param(0);
        let m1 = p.konst(-1);
        // Unsigned: -1 is u64::MAX, so `x > -1` is satisfiable only ...
        // the solver must NOT claim a contradiction from signed intervals.
        let c = p.cmp(CmpOp::Gt, true, x, m1);
        assert!(!contradicts(&p, &[(c, false)]));
    }

    #[test]
    fn model_search_finds_witnesses() {
        let mut p = pool2();
        let x = p.param(0);
        let y = p.param(1);
        let lt = p.cmp(CmpOp::Lt, false, x, y);
        let ten = p.konst(10);
        let gt10 = p.cmp(CmpOp::Gt, false, x, ten);
        let m = find_model(&p, &[(lt, true), (gt10, true)]).expect("model exists");
        assert!(m[0] < m[1] && m[0] > 10, "{m:?}");
        // And an infeasible system yields no model.
        assert!(find_model(&p, &[(lt, true), (lt, false)]).is_none());
    }

    #[test]
    fn param_domains_respect_types() {
        let mut p = TermPool::new();
        p.param_tys = vec![Type::Index];
        let x = p.param(0);
        let big = p.konst(1000);
        let gt = p.cmp(CmpOp::Gt, false, x, big);
        // Index params stay in the synthesizable probe window [0, 16].
        assert!(contradicts(&p, &[(gt, true)]));
    }
}
