//! Hash-consed symbolic terms.
//!
//! Scalars are represented as nodes in a term DAG over the function's
//! parameters. The smart constructors normalize as they build: constants
//! fold with the *exact* semantics of the concrete interpreters (wrapping
//! `i64` arithmetic, trapping division, `wrapping_shl(y as u32)` shifts,
//! per-type truncation, signed/unsigned comparison), commutative operands
//! are ordered canonically, and a small set of sound algebraic identities
//! (`x+0`, `x*1`, `x-x`, `min(x,x)`, …) is applied. Hash-consing makes
//! structural equality an id comparison, which is what the equivalence
//! checker leans on: two functions that lower to the same normalized term
//! per path are equal by construction.

use memoir_ir::{BinOp, CmpOp, Type};
use std::collections::HashMap;

/// A reference into the term pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// A term node. All terms denote an `i64` machine word; booleans are the
/// words `0`/`1`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant word.
    Const(i64),
    /// The `i`-th function parameter (shared across the two functions
    /// being compared).
    Param(u32),
    /// Binary operation with plain wrapping-`i64` semantics (the MEMOIR
    /// interpreter's per-type truncation is a separate [`Term::Trunc`]).
    Bin(BinOp, TermId, TermId),
    /// Comparison producing `0`/`1`. `unsigned` mirrors
    /// `memoir-interp`'s `is_unsigned` operand typing; the low-level IR
    /// always compares signed.
    Cmp(CmpOp, bool, TermId, TermId),
    /// Truncation to a narrow integer type (`truncate` in
    /// `memoir-interp`); wide types never build this node.
    Trunc(Type, TermId),
    /// `if c != 0 { t } else { e }`.
    Select(TermId, TermId, TermId),
}

/// Exact concrete semantics of [`Term::Bin`]: `Err(())` is division by
/// zero (a trap, never a value).
#[allow(clippy::result_unit_err)] // the unit error *is* the trap marker
pub fn fold_bin(op: BinOp, x: i64, y: i64) -> Result<i64, ()> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(());
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(());
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
    })
}

/// Exact concrete semantics of [`Term::Cmp`].
pub fn fold_cmp(op: CmpOp, unsigned: bool, x: i64, y: i64) -> bool {
    let ord = if unsigned {
        (x as u64).cmp(&(y as u64))
    } else {
        x.cmp(&y)
    };
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Exact concrete semantics of [`Term::Trunc`] (`memoir-interp`'s
/// `truncate`; wide types are the identity).
pub fn fold_trunc(t: Type, v: i64) -> i64 {
    match t {
        Type::I8 => v as i8 as i64,
        Type::U8 => v as u8 as i64,
        Type::I16 => v as i16 as i64,
        Type::U16 => v as u16 as i64,
        Type::I32 => v as i32 as i64,
        Type::U32 => v as u32 as i64,
        _ => v,
    }
}

/// Whether truncation to `t` is the identity on every `i64` word.
pub fn trunc_is_identity(t: Type) -> bool {
    !matches!(
        t,
        Type::I8 | Type::U8 | Type::I16 | Type::U16 | Type::I32 | Type::U32
    )
}

/// The inclusive `i64` payload domain of an integer parameter type,
/// matching the domains `memoir_lower::synth_args` draws from (the
/// cross-IR agreement contract is only claimed on synthesizable values:
/// `U64` keeps the sign bit clear, `Index` stays in the probe window).
pub fn type_domain(t: Type) -> (i64, i64) {
    match t {
        Type::I8 => (i8::MIN as i64, i8::MAX as i64),
        Type::U8 => (0, u8::MAX as i64),
        Type::I16 => (i16::MIN as i64, i16::MAX as i64),
        Type::U16 => (0, u16::MAX as i64),
        Type::I32 => (i32::MIN as i64, i32::MAX as i64),
        Type::U32 => (0, u32::MAX as i64),
        Type::U64 => (0, i64::MAX),
        Type::Bool => (0, 1),
        Type::Index => (0, 16),
        _ => (i64::MIN, i64::MAX),
    }
}

/// The hash-consing arena.
#[derive(Debug, Default)]
pub struct TermPool {
    nodes: Vec<Term>,
    interned: HashMap<Term, TermId>,
    /// Declared parameter types (seeded by the engines; consulted by the
    /// solver for initial domains and by model search).
    pub param_tys: Vec<Type>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The node behind an id.
    pub fn get(&self, t: TermId) -> &Term {
        &self.nodes[t.0 as usize]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.interned.get(&t) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(t.clone());
        self.interned.insert(t, id);
        id
    }

    /// A constant term.
    pub fn konst(&mut self, v: i64) -> TermId {
        self.intern(Term::Const(v))
    }

    /// The `i`-th parameter symbol.
    pub fn param(&mut self, i: u32) -> TermId {
        self.intern(Term::Param(i))
    }

    /// The constant behind a term, if it normalized to one.
    pub fn as_const(&self, t: TermId) -> Option<i64> {
        match self.get(t) {
            Term::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Binary operation. `Err(())` when the term is a *certain* division
    /// by zero (the caller turns it into a trap path).
    #[allow(clippy::result_unit_err)] // the unit error *is* the trap marker
    pub fn bin(&mut self, op: BinOp, a: TermId, b: TermId) -> Result<TermId, ()> {
        let (ca, cb) = (self.as_const(a), self.as_const(b));
        if let (Some(x), Some(y)) = (ca, cb) {
            return fold_bin(op, x, y).map(|v| self.konst(v));
        }
        // Sound identities on the known-constant side.
        match (op, ca, cb) {
            (BinOp::Add | BinOp::Or | BinOp::Xor, Some(0), _) => return Ok(b),
            (
                BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr,
                _,
                Some(0),
            ) => return Ok(a),
            (BinOp::Mul, Some(1), _) => return Ok(b),
            (BinOp::Mul | BinOp::Div, _, Some(1)) => return Ok(a),
            (BinOp::Mul | BinOp::And, Some(0), _) | (BinOp::Mul | BinOp::And, _, Some(0)) => {
                return Ok(self.konst(0))
            }
            _ => {}
        }
        if a == b {
            match op {
                BinOp::Sub | BinOp::Xor => return Ok(self.konst(0)),
                BinOp::And | BinOp::Or | BinOp::Min | BinOp::Max => return Ok(a),
                _ => {}
            }
        }
        // Canonical operand order for commutative operations.
        let (a, b) = match op {
            BinOp::Add
            | BinOp::Mul
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Min
            | BinOp::Max
                if b < a =>
            {
                (b, a)
            }
            _ => (a, b),
        };
        Ok(self.intern(Term::Bin(op, a, b)))
    }

    /// Comparison producing a `0`/`1` term.
    pub fn cmp(&mut self, op: CmpOp, unsigned: bool, a: TermId, b: TermId) -> TermId {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = fold_cmp(op, unsigned, x, y);
            return self.konst(v as i64);
        }
        if a == b {
            let v = matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge);
            return self.konst(v as i64);
        }
        // Canonical operand order (swap flips the comparison).
        let (op, a, b) = if b < a {
            (op.swapped(), b, a)
        } else {
            (op, a, b)
        };
        self.intern(Term::Cmp(op, unsigned, a, b))
    }

    /// Truncation to an integer type.
    pub fn trunc(&mut self, t: Type, v: TermId) -> TermId {
        if trunc_is_identity(t) {
            return v;
        }
        if let Some(x) = self.as_const(v) {
            let w = fold_trunc(t, x);
            return self.konst(w);
        }
        if let Term::Trunc(inner_t, _) = self.get(v) {
            if *inner_t == t {
                return v;
            }
        }
        self.intern(Term::Trunc(t, v))
    }

    /// `if c != 0 { t } else { e }`.
    pub fn select(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        if let Some(cv) = self.as_const(c) {
            return if cv != 0 { t } else { e };
        }
        if t == e {
            return t;
        }
        self.intern(Term::Select(c, t, e))
    }

    /// Exact concrete evaluation under a parameter assignment. `None` on
    /// division by zero (the corresponding execution would trap).
    pub fn eval(&self, t: TermId, params: &[i64]) -> Option<i64> {
        match self.get(t) {
            Term::Const(v) => Some(*v),
            Term::Param(i) => params.get(*i as usize).copied(),
            Term::Bin(op, a, b) => {
                let (x, y) = (self.eval(*a, params)?, self.eval(*b, params)?);
                fold_bin(*op, x, y).ok()
            }
            Term::Cmp(op, unsigned, a, b) => {
                let (x, y) = (self.eval(*a, params)?, self.eval(*b, params)?);
                Some(fold_cmp(*op, *unsigned, x, y) as i64)
            }
            Term::Trunc(ty, a) => Some(fold_trunc(*ty, self.eval(*a, params)?)),
            Term::Select(c, a, b) => {
                if self.eval(*c, params)? != 0 {
                    self.eval(*a, params)
                } else {
                    self.eval(*b, params)
                }
            }
        }
    }

    /// All parameter indices a term mentions.
    pub fn params_of(&self, t: TermId, out: &mut Vec<u32>) {
        match self.get(t) {
            Term::Const(_) => {}
            Term::Param(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Term::Bin(_, a, b) | Term::Cmp(_, _, a, b) => {
                let (a, b) = (*a, *b);
                self.params_of(a, out);
                self.params_of(b, out);
            }
            Term::Trunc(_, a) => {
                let a = *a;
                self.params_of(a, out);
            }
            Term::Select(c, a, b) => {
                let (c, a, b) = (*c, *a, *b);
                self.params_of(c, out);
                self.params_of(a, out);
                self.params_of(b, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_with_interp_semantics() {
        let mut p = TermPool::new();
        let a = p.konst(i64::MAX);
        let b = p.konst(1);
        let s = p.bin(BinOp::Add, a, b).unwrap();
        assert_eq!(p.as_const(s), Some(i64::MIN), "wrapping add");
        let z = p.konst(0);
        assert!(p.bin(BinOp::Div, a, z).is_err(), "division by zero traps");
        let c65 = p.konst(65);
        let sh = p.bin(BinOp::Shl, b, c65).unwrap();
        assert_eq!(p.as_const(sh), Some(1i64.wrapping_shl(65)), "shift masks");
    }

    #[test]
    fn hash_consing_makes_equality_structural() {
        let mut p = TermPool::new();
        let x = p.param(0);
        let y = p.param(1);
        let a = p.bin(BinOp::Add, x, y).unwrap();
        let b = p.bin(BinOp::Add, y, x).unwrap();
        assert_eq!(a, b, "commutative canonical order");
        let c1 = p.cmp(CmpOp::Lt, false, x, y);
        let c2 = p.cmp(CmpOp::Gt, false, y, x);
        assert_eq!(c1, c2, "swapped comparison canonicalizes");
    }

    #[test]
    fn identities_are_sound() {
        let mut p = TermPool::new();
        let x = p.param(0);
        let zero = p.konst(0);
        let one = p.konst(1);
        assert_eq!(p.bin(BinOp::Add, x, zero).unwrap(), x);
        assert_eq!(p.bin(BinOp::Mul, x, one).unwrap(), x);
        assert_eq!(p.bin(BinOp::Sub, x, x).unwrap(), zero);
        assert_eq!(p.bin(BinOp::Min, x, x).unwrap(), x);
        let t = p.trunc(Type::I64, x);
        assert_eq!(t, x, "wide truncation is the identity");
    }

    #[test]
    fn eval_matches_folding() {
        let mut p = TermPool::new();
        let x = p.param(0);
        let y = p.param(1);
        let c3 = p.konst(3);
        let prod = p.bin(BinOp::Mul, x, c3).unwrap();
        let sum = p.bin(BinOp::Add, prod, y).unwrap();
        assert_eq!(p.eval(sum, &[5, 7]), Some(22));
        let div = p.bin(BinOp::Div, x, y).unwrap();
        assert_eq!(p.eval(div, &[5, 0]), None, "trap evaluates to None");
        let t8 = p.trunc(Type::I8, sum);
        assert_eq!(p.eval(t8, &[100, 100]), Some(fold_trunc(Type::I8, 400)));
    }

    #[test]
    fn trunc_of_trunc_collapses() {
        let mut p = TermPool::new();
        let x = p.param(0);
        let t1 = p.trunc(Type::U8, x);
        let t2 = p.trunc(Type::U8, t1);
        assert_eq!(t1, t2);
    }
}
