//! End-to-end oracle tests: enumeration over builder-constructed MEMOIR
//! functions, cross-IR equivalence against the real lowering, confirmed
//! refutation of sabotaged code, and symbolic-vs-concrete agreement.

use memoir_interp::{Interp, Value};
use memoir_ir::{BinOp, CmpOp, Form, Module, ModuleBuilder, Type};
use memoir_lower::lower_module;
use symexec::{
    enumerate_memoir, predict, prove_lowering, prove_memoir_equiv, seed_params, Budget, FnVerdict,
};

/// `if x < y { x*3 + y } else { y*2 - x }`
fn branchy_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    mb.func("pick", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let x = b.param("x", i64t);
        let y = b.param("y", i64t);
        b.returns(&[i64t]);
        let then_b = b.block("then");
        let else_b = b.block("else");
        let c = b.cmp(CmpOp::Lt, x, y);
        b.branch(c, then_b, else_b);
        b.switch_to(then_b);
        let three = b.i64(3);
        let x3 = b.mul(x, three);
        let r1 = b.add(x3, y);
        b.ret(vec![r1]);
        b.switch_to(else_b);
        let two = b.i64(2);
        let y2 = b.mul(y, two);
        let r2 = b.sub(y2, x);
        b.ret(vec![r2]);
    });
    mb.finish()
}

/// `x / y` — traps when `y == 0`.
fn div_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    mb.func("quot", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let x = b.param("x", i64t);
        let y = b.param("y", i64t);
        b.returns(&[i64t]);
        let q = b.bin(BinOp::Div, x, y);
        b.ret(vec![q]);
    });
    mb.finish()
}

/// Local sequence traffic with a scalar signature:
/// `s = seq[2]; s[0] = x; s[0] += 5; s[1] = x; ret s[0] + size(s)`.
fn seq_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    mb.func("seqy", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let x = b.param("x", i64t);
        b.returns(&[i64t]);
        let two = b.index(2);
        let s = b.new_seq(i64t, two);
        let zero = b.index(0);
        let one = b.index(1);
        b.mut_write(s, zero, x);
        let five = b.i64(5);
        b.mut_rmw(s, zero, BinOp::Add, five);
        b.mut_write(s, one, x);
        let r = b.read(s, zero);
        let n = b.size(s);
        let ni = b.cast(Type::I64, n);
        let total = b.add(r, ni);
        b.ret(vec![total]);
    });
    mb.finish()
}

/// Local assoc traffic (host-hashtable lowering path):
/// `a = assoc; a[2] = x; a[2] *= 3; ret a[2] + has(a, 7)`.
fn assoc_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    mb.func("assocy", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let x = b.param("x", i64t);
        b.returns(&[i64t]);
        let a = b.new_assoc(i64t, i64t);
        let k = b.i64(2);
        b.mut_write(a, k, x);
        let three = b.i64(3);
        b.mut_rmw(a, k, BinOp::Mul, three);
        let r = b.read(a, k);
        let k7 = b.i64(7);
        let h = b.has(a, k7);
        let hi = b.cast(Type::I64, h);
        let total = b.add(r, hi);
        b.ret(vec![total]);
    });
    mb.finish()
}

#[test]
fn branchy_function_proves_against_lowering() {
    let m = branchy_module();
    let lm = lower_module(&m).unwrap();
    let verdict = prove_lowering(&m, &lm, "pick", &Budget::default());
    assert_eq!(verdict, FnVerdict::Proved);
}

#[test]
fn seq_function_proves_against_lowering() {
    let m = seq_module();
    let lm = lower_module(&m).unwrap();
    let verdict = prove_lowering(&m, &lm, "seqy", &Budget::default());
    assert_eq!(verdict, FnVerdict::Proved);
}

#[test]
fn assoc_function_proves_against_lowering() {
    let m = assoc_module();
    let lm = lower_module(&m).unwrap();
    let verdict = prove_lowering(&m, &lm, "assocy", &Budget::default());
    assert_eq!(verdict, FnVerdict::Proved);
}

#[test]
fn source_trap_paths_impose_no_obligation() {
    // `x / y` traps on y == 0 on both sides; the y == 0 path carries no
    // obligation and the y != 0 path discharges structurally.
    let m = div_module();
    let lm = lower_module(&m).unwrap();
    let verdict = prove_lowering(&m, &lm, "quot", &Budget::default());
    assert_eq!(verdict, FnVerdict::Proved);
}

#[test]
fn sabotaged_lowering_is_refuted_with_confirmed_witness() {
    let m = branchy_module();
    let mut lm = lower_module(&m).unwrap();
    // Rewire the then-path return to parameter 0 (drops the arithmetic).
    let fun = lm.by_name("pick").unwrap();
    let f = &mut lm.funcs[fun.0 as usize];
    let p0 = f.param(0);
    let mut patched = 0;
    for inst in &mut f.insts {
        if let lir::Op::Ret(vals) = &mut inst.op {
            if patched == 0 {
                vals[0] = p0;
                patched += 1;
            }
        }
    }
    assert_eq!(patched, 1);
    match prove_lowering(&m, &lm, "pick", &Budget::default()) {
        FnVerdict::Diverged { args, detail } => {
            // The witness must actually reproduce on the concrete engines.
            let mut interp = Interp::new(&m);
            let vals: Vec<Value> = args.iter().map(|&v| Value::Int(Type::I64, v)).collect();
            let expected = interp.run_by_name("pick", vals).unwrap();
            let got = lir::LirMachine::new(&lm)
                .run_by_name("pick", args.clone())
                .unwrap();
            assert_ne!(expected[0].as_int().unwrap(), got[0], "{detail}");
        }
        other => panic!("expected a confirmed divergence, got {other:?}"),
    }
}

#[test]
fn memoir_equiv_proves_identity_and_refutes_sabotage() {
    let m = branchy_module();
    assert_eq!(
        prove_memoir_equiv(&m, &m.clone(), "pick", &Budget::default()),
        FnVerdict::Proved
    );
    // Sabotage: flip the multiply constant on the then-path.
    let mut bad = m.clone();
    let fid = bad.func_by_name("pick").unwrap();
    let f = &mut bad.funcs[fid];
    let threes: Vec<_> = f
        .values
        .iter()
        .filter_map(|(id, v)| match v.def {
            memoir_ir::ValueDef::Const(memoir_ir::Constant::Int(t, 3)) => Some((id, t)),
            _ => None,
        })
        .collect();
    assert_eq!(threes.len(), 1);
    for (id, t) in threes {
        f.values[id].def = memoir_ir::ValueDef::Const(memoir_ir::Constant::Int(t, 4));
    }
    match prove_memoir_equiv(&m, &bad, "pick", &Budget::default()) {
        FnVerdict::Diverged { args, .. } => {
            // x < y and x != 0 is required to observe 3x vs 4x.
            assert!(args[0] < args[1] && args[0] != 0, "weak witness {args:?}");
        }
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn predict_agrees_with_concrete_interp_on_probe_grid() {
    for m in [branchy_module(), div_module(), seq_module(), assoc_module()] {
        for (_, f) in m.funcs.iter() {
            let fid = m.func_by_name(&f.name).unwrap();
            let mut pool = seed_params(&m, fid).unwrap();
            let paths = enumerate_memoir(&m, fid, &mut pool, &Budget::default()).unwrap();
            let grid: Vec<Vec<i64>> = match f.params.len() {
                1 => (-3..=3).map(|x| vec![x]).collect(),
                2 => (-3..=3)
                    .flat_map(|x| (-3..=3).map(move |y| vec![x, y]))
                    .collect(),
                n => panic!("unexpected arity {n}"),
            };
            for args in grid {
                let sym = predict(&pool, &paths, &args);
                let mut interp = Interp::new(&m);
                let vals: Vec<Value> = args.iter().map(|&v| Value::Int(Type::I64, v)).collect();
                let conc = interp.run_by_name(&f.name, vals);
                match (sym, conc) {
                    (Some(Ok(sv)), Ok(cv)) => {
                        let ci: Vec<i64> = cv.iter().map(|v| v.as_int().unwrap()).collect();
                        assert_eq!(sv, ci, "`{}`({args:?})", f.name);
                    }
                    (Some(Err(())), Err(_)) => {}
                    (s, c) => panic!("`{}`({args:?}): symbolic {s:?} vs concrete {c:?}", f.name),
                }
            }
        }
    }
}

#[test]
fn enumeration_is_deterministic() {
    // Two independent enumerations yield identical path sets (same
    // order, same conditions, same end terms) — the engine explores a
    // LIFO worklist with a fixed child order, no ambient state.
    let m = branchy_module();
    let fid = m.func_by_name("pick").unwrap();
    let mut p1 = seed_params(&m, fid).unwrap();
    let a = enumerate_memoir(&m, fid, &mut p1, &Budget::default()).unwrap();
    let mut p2 = seed_params(&m, fid).unwrap();
    let b = enumerate_memoir(&m, fid, &mut p2, &Budget::default()).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 2);
}

#[test]
fn budget_exhaustion_is_an_error_not_a_verdict() {
    let m = branchy_module();
    let fid = m.func_by_name("pick").unwrap();
    let mut pool = seed_params(&m, fid).unwrap();
    let tiny = Budget {
        max_paths: 1,
        max_ops: 1_000_000,
        fork_width: 4,
    };
    assert!(enumerate_memoir(&m, fid, &mut pool, &tiny).is_err());
    let lm = lower_module(&m).unwrap();
    assert!(matches!(
        prove_lowering(&m, &lm, "pick", &tiny),
        FnVerdict::Inconclusive(_)
    ));
}
