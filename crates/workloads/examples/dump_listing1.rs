fn main() {
    let m = workloads::listing1::build_listing1();
    print!("{}", memoir_ir::printer::print_module(&m));
}
