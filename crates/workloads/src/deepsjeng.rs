//! The deepsjeng runtime twin (paper §VII-C).
//!
//! A transposition-table game search: positions are probed in a table of
//! fixed-size entry objects; hits verify a 16-bit key tag, misses store a
//! fresh entry. The paper's only applicable MEMOIR optimizations were
//! **field elision** of the 16-bit tag plus **key folding** — packing the
//! remaining entry tighter (−16.6% max RSS) at the price of routing tag
//! checks through an associative array (+5.1% execution time).

use memoir_runtime::{stats, CollectionClass, ObjRef, ObjectHeap, Seq};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeepsjengParams {
    /// Transposition-table capacity (entries).
    pub table_entries: usize,
    /// Search nodes visited.
    pub nodes: usize,
}

impl Default for DeepsjengParams {
    fn default() -> Self {
        DeepsjengParams {
            table_entries: 60_000,
            nodes: 400_000,
        }
    }
}

/// Variant: baseline layout vs field-elided (+ key-folded) layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeepsjengVariant {
    /// Elide the 16-bit key tag into a key-folded associative array.
    pub fe_key_fold: bool,
}

/// Outcome.
#[derive(Clone, Debug)]
pub struct DeepsjengOutcome {
    /// Search checksum (hits/cutoffs accumulated) — variant-independent.
    pub checksum: i64,
    /// Ledger snapshot.
    pub ledger: stats::Ledger,
}

/// A table entry. The 16-bit tag conceptually occupies (with padding) 8
/// bytes of the baseline 24-byte layout; eliding it packs the entry to 16.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag16: u16,
    depth: i8,
    score: i32,
    best_move: u32,
}

const LAYOUT_BASE: u64 = 24;
const LAYOUT_ELIDED: u64 = 16;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }
}

/// Runs the workload; resets the thread ledger first.
pub fn run_deepsjeng(p: &DeepsjengParams, v: DeepsjengVariant) -> DeepsjengOutcome {
    stats::reset();
    let layout = if v.fe_key_fold {
        LAYOUT_ELIDED
    } else {
        LAYOUT_BASE
    };
    let mut heap: ObjectHeap<Entry> = ObjectHeap::new_arena(layout);
    // The table itself: a sequence of entry references (the hash array).
    let mut table: Seq<Option<ObjRef>> = Seq::with_len(p.table_entries, |_| None);
    // FE variant: the 16-bit tags live in a key-folded side collection —
    // key folding shrank the key from the 64-bit hash to the dense slot
    // index, so the collection is a flat Seq<u16> (2 B per slot) while the
    // entry object packs from 24 B down to 16 B.
    let mut tags: Option<Seq<u16>> = v
        .fe_key_fold
        .then(|| Seq::with_len(p.table_entries, |_| 0u16));

    // A per-search move stack (sequential class traffic).
    let mut moves: Seq<u32> = Seq::new();

    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut checksum: i64 = 0;

    for node in 0..p.nodes {
        let hash = rng.next();
        let slot = (hash % p.table_entries as u64) as usize;
        let tag = (hash >> 48) as u16;

        let existing = *table.read(slot);
        match existing {
            Some(r) => {
                // Probe: compare the tag, then read the payload on a hit.
                let stored_tag = match &tags {
                    Some(t) => {
                        stats::charge(1.5); // second-array indirection
                        *t.read(slot)
                    }
                    None => heap.read(r, |e| e.tag16),
                };
                if stored_tag == tag {
                    let (depth, score) = heap.read(r, |e| (e.depth, e.score));
                    checksum = checksum.wrapping_add(depth as i64 + score as i64);
                } else {
                    // Replace on collision.
                    heap.write(r, |e| {
                        e.tag16 = tag;
                        e.depth = (node % 30) as i8;
                        e.score = (hash & 0xFFFF) as i32 - 0x8000;
                        e.best_move = (hash >> 16) as u32;
                    });
                    if let Some(t) = &mut tags {
                        stats::charge(1.5);
                        t.write(slot, tag);
                    }
                    checksum = checksum.wrapping_add(1);
                }
            }
            None => {
                let r = heap.alloc(Entry {
                    tag16: tag,
                    depth: (node % 30) as i8,
                    score: (hash & 0xFFFF) as i32 - 0x8000,
                    best_move: (hash >> 16) as u32,
                });
                if let Some(t) = &mut tags {
                    stats::charge(1.5);
                    t.write(slot, tag);
                }
                table.write(slot, Some(r));
            }
        }

        // Move-generation traffic on the sequential stack.
        moves.push((hash & 0xFFFF) as u32);
        if moves.size() > 64 {
            let len = moves.size();
            moves.remove_range(0, len - 32);
        }
        stats::charge(48.0); // move generation / evaluation bookkeeping
    }
    let _ = CollectionClass::Tree;
    DeepsjengOutcome {
        checksum,
        ledger: stats::snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DeepsjengParams {
        DeepsjengParams {
            table_entries: 4_000,
            nodes: 30_000,
        }
    }

    #[test]
    fn deterministic_and_variant_equal() {
        let a = run_deepsjeng(&small(), DeepsjengVariant::default());
        let b = run_deepsjeng(&small(), DeepsjengVariant::default());
        assert_eq!(a.checksum, b.checksum);
        let fe = run_deepsjeng(&small(), DeepsjengVariant { fe_key_fold: true });
        assert_eq!(a.checksum, fe.checksum, "elision preserves semantics");
    }

    /// The paper's deepsjeng shape: FE+key-folding shrinks memory
    /// (−16.6%) but costs time (+5.1%).
    #[test]
    fn fe_trades_time_for_memory() {
        let p = DeepsjengParams::default();
        let base = run_deepsjeng(&p, DeepsjengVariant::default());
        let fe = run_deepsjeng(&p, DeepsjengVariant { fe_key_fold: true });
        let dt = fe.ledger.cost / base.ledger.cost - 1.0;
        let dr = fe.ledger.peak_bytes as f64 / base.ledger.peak_bytes as f64 - 1.0;
        assert!(dt > 0.01, "time must regress: {dt}");
        assert!(dt < 0.25, "but modestly: {dt}");
        assert!(dr < -0.08, "memory must shrink: {dr}");
    }
}
