//! The deepsjeng kernel at the IR level — a transposition-table probe/store
//! loop — used as a Table III compilation subject (compile time and
//! collection census through the MEMOIR pipeline).

use memoir_ir::{BinOp, Callee, CmpOp, Field, Form, Module, ModuleBuilder, Type};

/// Builds the deepsjeng kernel: `search(nodes: index) -> i64` returns a
/// search checksum.
pub fn build_deepsjeng_ir() -> Module {
    let mut mb = ModuleBuilder::new("deepsjeng");
    let i64t = mb.module.types.intern(Type::I64);
    let i16t = mb.module.types.intern(Type::I16);
    let entry_ty = mb
        .module
        .types
        .define_object(
            "tt_entry",
            vec![
                Field {
                    name: "tag".into(),
                    ty: i16t,
                },
                Field {
                    name: "depth".into(),
                    ty: i64t,
                },
                Field {
                    name: "score".into(),
                    ty: i64t,
                },
                Field {
                    name: "best_move".into(),
                    ty: i64t,
                },
            ],
        )
        .unwrap();
    let ref_ty = mb.module.types.ref_of(entry_ty);

    // probe(table, hash) -> score or -1 (via assoc of slot → entry ref).
    let probe = mb.func("probe", Form::Mut, |b| {
        let idxt = b.ty(Type::Index);
        let assoc_ty = b.types.assoc_of(idxt, ref_ty);
        let table = b.param_ref("table", assoc_ty);
        let slot = b.param("slot", idxt);
        let tag = b.param("tag", i64t);
        let hit = b.block("hit");
        let tag_ok = b.block("tag_ok");
        let miss = b.block("miss");
        let out = b.block("out");
        let present = b.has(table, slot);
        b.branch(present, hit, miss);
        b.switch_to(hit);
        let e = b.read(table, slot);
        let stored16 = b.field_read(e, entry_ty, 0);
        let stored = b.cast(Type::I64, stored16);
        let same = b.cmp(CmpOp::Eq, stored, tag);
        b.branch(same, tag_ok, miss);
        b.switch_to(tag_ok);
        let score = b.field_read(e, entry_ty, 2);
        b.jump(out);
        b.switch_to(miss);
        let neg = b.i64(-1);
        b.jump(out);
        b.switch_to(out);
        let r = b.phi(i64t, vec![(tag_ok, score), (miss, neg)]);
        b.returns(&[i64t]);
        b.ret(vec![r]);
    });

    // store(table, slot, tag, depth, score).
    let store = mb.func("store", Form::Mut, |b| {
        let idxt = b.ty(Type::Index);
        let assoc_ty = b.types.assoc_of(idxt, ref_ty);
        let table = b.param_ref("table", assoc_ty);
        let slot = b.param("slot", idxt);
        let tag = b.param("tag", i64t);
        let depth = b.param("depth", i64t);
        let score = b.param("score", i64t);
        let e = b.new_obj(entry_ty);
        let t16 = b.cast(Type::I16, tag);
        b.field_write(e, entry_ty, 0, t16);
        b.field_write(e, entry_ty, 1, depth);
        b.field_write(e, entry_ty, 2, score);
        let zero = b.i64(0);
        b.field_write(e, entry_ty, 3, zero);
        b.mut_write(table, slot, e);
        b.ret(vec![]);
    });

    // search(nodes) — probe/store loop over xorshift positions.
    mb.func("search", Form::Mut, |b| {
        let idxt = b.ty(Type::Index);
        let assoc_ty = b.types.assoc_of(idxt, ref_ty);
        let nodes = b.param("nodes", idxt);
        let table = b.new_assoc(idxt, ref_ty);
        let _ = assoc_ty;
        let moves_elem = b.ty(Type::I64);
        let zero_i = b.index(0);
        let moves = b.new_seq(moves_elem, zero_i);
        let seed0 = b.i64(0x12345678);
        let zero64 = b.i64(0);

        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.func.entry;
        b.jump(header);
        b.switch_to(header);
        let n = b.phi_placeholder(idxt);
        let seed = b.phi_placeholder(moves_elem);
        let acc = b.phi_placeholder(moves_elem);
        b.add_phi_incoming(n, entry, zero_i);
        b.add_phi_incoming(seed, entry, seed0);
        b.add_phi_incoming(acc, entry, zero64);
        let done = b.cmp(CmpOp::Ge, n, nodes);
        b.branch(done, exit, body);

        b.switch_to(body);
        // xorshift
        let c13 = b.i64(13);
        let c7 = b.i64(7);
        let c17 = b.i64(17);
        let t1 = b.bin(BinOp::Shl, seed, c13);
        let s1 = b.bin(BinOp::Xor, seed, t1);
        let t2 = b.bin(BinOp::Shr, s1, c7);
        let s2 = b.bin(BinOp::Xor, s1, t2);
        let t3 = b.bin(BinOp::Shl, s2, c17);
        let s3 = b.bin(BinOp::Xor, s2, t3);
        let mask = b.i64(0x0FFF);
        let slot64 = b.bin(BinOp::And, s3, mask);
        let slot = b.cast(Type::Index, slot64);
        let c48 = b.i64(48);
        let tag_shift = b.bin(BinOp::Shr, s3, c48);
        let tagmask = b.i64(0x7FFF);
        let tag = b.bin(BinOp::And, tag_shift, tagmask);
        let score = b.call(Callee::Func(probe), vec![table, slot, tag], &[moves_elem])[0];
        let acc2 = b.add(acc, score);
        let neg = b.i64(-1);
        let was_miss = b.cmp(CmpOp::Eq, score, neg);
        let do_store = b.block("do_store");
        let cont = b.block("cont");
        b.branch(was_miss, do_store, cont);
        b.switch_to(do_store);
        let depth = b.i64(5);
        let sc_mask = b.i64(0xFF);
        let sc = b.bin(BinOp::And, s3, sc_mask);
        b.call(Callee::Func(store), vec![table, slot, tag, depth, sc], &[]);
        let msz = b.size(moves);
        b.mut_insert(moves, msz, Some(s3));
        b.jump(cont);
        b.switch_to(cont);
        let one = b.index(1);
        let n2 = b.add(n, one);
        b.add_phi_incoming(n, cont, n2);
        b.add_phi_incoming(seed, cont, s3);
        b.add_phi_incoming(acc, cont, acc2);
        b.jump(header);

        b.switch_to(exit);
        b.returns(&[moves_elem]);
        b.ret(vec![acc]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("search");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_interp::{Interp, Value};

    #[test]
    fn runs_and_is_deterministic() {
        let m = build_deepsjeng_ir();
        memoir_ir::verifier::assert_valid(&m);
        let run = |m: &Module| {
            let mut i = Interp::new(m).with_fuel(200_000_000);
            i.run_by_name("search", vec![Value::Int(Type::Index, 3000)])
                .unwrap()[0]
                .as_int()
                .unwrap()
        };
        let a = run(&m);
        let b = run(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn pipeline_o3_preserves_semantics() {
        let m0 = build_deepsjeng_ir();
        let mut m = m0.clone();
        memoir_opt::compile(
            &mut m,
            memoir_opt::OptLevel::O3(memoir_opt::OptConfig::all()),
        )
        .unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let run = |m: &Module| {
            let mut i = Interp::new(m).with_fuel(200_000_000);
            i.run_by_name("search", vec![Value::Int(Type::Index, 2000)])
                .unwrap()[0]
                .as_int()
                .unwrap()
        };
        assert_eq!(run(&m0), run(&m));
    }
}
