//! A document-store kernel at the IR level: nested object graphs
//! (documents with an object-valued `meta` field and a per-document
//! `tags` sequence) stored in an associative table keyed by a masked
//! (provably bounded) document id.
//!
//! This is the scenario-diversity subject from the ROADMAP: where
//! Smallbank stresses scalar-valued associative tables, the document
//! store runs the whole pipeline over real object graphs — `Ref`-valued
//! assoc elements, one level of object nesting (`Doc.meta: &Meta`), and
//! collections stored inside object fields (`Doc.tags: Seq<i64>`).
//!
//! The transaction loop executes an OptME-style fixed job mix per
//! iteration:
//!
//! * **update-field** — read a document, bump `meta.views`, `score`, and
//!   `rev`, and xor a tag slot; the tag and per-document counter updates
//!   are written as naive `read → bin → mut_write` chains so the fusion
//!   pass can collapse each into a single-pass `RMW`;
//! * **get / project** — read a second document and fold
//!   `score ^ meta.flags` into the running checksum;
//! * **insert** — every 16th transaction replaces a slot with a freshly
//!   allocated document (new `Doc`, new `Meta`, fresh `tags` sequence).
//!
//! After the transaction loop a **scan-project + filter** pass walks the
//! bounded id space, projects `score + 2·meta.views` from every present
//! document, and counts odd scores. Every key that touches the store or
//! the counter table is an `& (DOCS-1)` mask of a hash, `keys` is never
//! called, and neither table escapes — so the representation analysis
//! can lower both to the dense direct-indexed layout, which is what
//! makes the scan's `has`/`read` probes cheap. The duplicate `size`
//! queries at the exit are fodder for the fusion pass's redundant-query
//! folding.

use memoir_ir::{BinOp, CmpOp, Field, Form, Module, ModuleBuilder, Type};

/// Number of document slots (the masked key-space bound).
pub const DOCS: u64 = 512;

/// Tag slots per document (`Doc.tags` length).
pub const TAG_SLOTS: u64 = 4;

/// `Doc` field indices.
const F_SCORE: u32 = 0;
const F_REV: u32 = 1;
const F_META: u32 = 2;
const F_TAGS: u32 = 3;

/// `Meta` field indices.
const M_VIEWS: u32 = 0;
const M_FLAGS: u32 = 1;

/// Builds the document-store kernel: `docstore(txns: index) -> i64`
/// returns a deterministic checksum over everything the job mix and the
/// final scan observed.
pub fn build_docstore_ir() -> Module {
    let mut mb = ModuleBuilder::new("docstore");
    let i64t = mb.module.types.intern(Type::I64);
    let tags_t = mb.module.types.seq_of(i64t);
    let meta_ty = mb
        .module
        .types
        .define_object(
            "Meta",
            vec![
                Field {
                    name: "views".into(),
                    ty: i64t,
                },
                Field {
                    name: "flags".into(),
                    ty: i64t,
                },
            ],
        )
        .unwrap();
    let meta_ref = mb.module.types.ref_of(meta_ty);
    let doc_ty = mb
        .module
        .types
        .define_object(
            "Doc",
            vec![
                Field {
                    name: "score".into(),
                    ty: i64t,
                },
                Field {
                    name: "rev".into(),
                    ty: i64t,
                },
                Field {
                    name: "meta".into(),
                    ty: meta_ref,
                },
                Field {
                    name: "tags".into(),
                    ty: tags_t,
                },
            ],
        )
        .unwrap();
    let doc_ref = mb.module.types.ref_of(doc_ty);

    mb.func("docstore", Form::Mut, |b| {
        let idxt = b.ty(Type::Index);
        let i64t = b.ty(Type::I64);
        let txns = b.param("txns", idxt);
        let store = b.new_assoc(i64t, doc_ref);
        let counts = b.new_assoc(i64t, i64t);
        let mask = b.i64(DOCS as i64 - 1);
        let zero_i = b.index(0);
        let one_i = b.index(1);
        let zero64 = b.i64(0);
        let one64 = b.i64(1);
        let seed0 = b.i64(0x00C0FFEE);
        let c_docs = b.index(DOCS);
        let c_tags = b.index(TAG_SLOTS);
        let c7 = b.i64(7);
        let c255 = b.i64(0xFF);

        let ih = b.block("init_header");
        let ib = b.block("init_body");
        let mh = b.block("txn_header");
        let tb = b.block("txn_body");
        let ins = b.block("txn_insert");
        let cont = b.block("txn_cont");
        let sh = b.block("scan_header");
        let sb = b.block("scan_body");
        let sp = b.block("scan_present");
        let scont = b.block("scan_cont");
        let exit = b.block("exit");
        let entry = b.func.entry;
        b.jump(ih);

        // Seed every slot with a fresh document: keys are masked so the
        // bound is provable at every write site.
        b.switch_to(ih);
        let j = b.phi_placeholder(idxt);
        b.add_phi_incoming(j, entry, zero_i);
        let init_done = b.cmp(CmpOp::Ge, j, c_docs);
        b.branch(init_done, mh, ib);

        b.switch_to(ib);
        let jc = b.cast(Type::I64, j);
        let key = b.bin(BinOp::And, jc, mask);
        let meta = b.new_obj(meta_ty);
        b.field_write(meta, meta_ty, M_VIEWS, zero64);
        let flags = b.bin(BinOp::And, key, c7);
        b.field_write(meta, meta_ty, M_FLAGS, flags);
        let doc = b.new_obj(doc_ty);
        b.field_write(doc, doc_ty, F_SCORE, key);
        b.field_write(doc, doc_ty, F_REV, zero64);
        b.field_write(doc, doc_ty, F_META, meta);
        let tags = b.new_seq(i64t, c_tags);
        for slot in 0..TAG_SLOTS {
            let at = b.index(slot);
            b.mut_write(tags, at, zero64);
        }
        b.field_write(doc, doc_ty, F_TAGS, tags);
        b.mut_write(store, key, doc);
        b.mut_write(counts, key, zero64);
        let j2 = b.add(j, one_i);
        b.add_phi_incoming(j, ib, j2);
        b.jump(ih);

        // The transaction loop.
        b.switch_to(mh);
        let i = b.phi_placeholder(idxt);
        let seed = b.phi_placeholder(i64t);
        let acc = b.phi_placeholder(i64t);
        b.add_phi_incoming(i, ih, zero_i);
        b.add_phi_incoming(seed, ih, seed0);
        b.add_phi_incoming(acc, ih, zero64);
        let done = b.cmp(CmpOp::Ge, i, txns);
        b.branch(done, sh, tb);

        b.switch_to(tb);
        // xorshift.
        let c13 = b.i64(13);
        let c17 = b.i64(17);
        let t1 = b.bin(BinOp::Shl, seed, c13);
        let s1 = b.bin(BinOp::Xor, seed, t1);
        let t2 = b.bin(BinOp::Shr, s1, c7);
        let s2 = b.bin(BinOp::Xor, s1, t2);
        let t3 = b.bin(BinOp::Shl, s2, c17);
        let s3 = b.bin(BinOp::Xor, s2, t3);
        // Document ids and the update amount.
        let key1 = b.bin(BinOp::And, s3, mask);
        let c13b = b.i64(13);
        let sh13 = b.bin(BinOp::Shr, s3, c13b);
        let key2 = b.bin(BinOp::And, sh13, mask);
        let c24 = b.i64(24);
        let sh24 = b.bin(BinOp::Shr, s3, c24);
        let amt = b.bin(BinOp::And, sh24, c255);
        // update-field: bump meta.views, score, and rev through the
        // nested object graph.
        let d = b.read(store, key1);
        let m = b.field_read(d, doc_ty, F_META);
        let v = b.field_read(m, meta_ty, M_VIEWS);
        let v2 = b.bin(BinOp::Add, v, one64);
        b.field_write(m, meta_ty, M_VIEWS, v2);
        let s = b.field_read(d, doc_ty, F_SCORE);
        let s_up = b.bin(BinOp::Add, s, amt);
        b.field_write(d, doc_ty, F_SCORE, s_up);
        let r = b.field_read(d, doc_ty, F_REV);
        let r2 = b.bin(BinOp::Add, r, one64);
        b.field_write(d, doc_ty, F_REV, r2);
        // Tag-slot update: the naive seq RMW chain fusion turns into one
        // storage pass.
        let dtags = b.field_read(d, doc_ty, F_TAGS);
        let c40 = b.i64(40);
        let sh40 = b.bin(BinOp::Shr, s3, c40);
        let c3 = b.i64(TAG_SLOTS as i64 - 1);
        let ti64 = b.bin(BinOp::And, sh40, c3);
        let ti = b.cast(Type::Index, ti64);
        let t = b.read(dtags, ti);
        let t2 = b.bin(BinOp::Xor, t, amt);
        b.mut_write(dtags, ti, t2);
        // Per-document update counter: the naive assoc RMW chain.
        let c = b.read(counts, key1);
        let c2 = b.bin(BinOp::Add, c, one64);
        b.mut_write(counts, key1, c2);
        // get/project: fold score ^ meta.flags of a second document.
        let d2 = b.read(store, key2);
        let sc = b.field_read(d2, doc_ty, F_SCORE);
        let m2 = b.field_read(d2, doc_ty, F_META);
        let fl = b.field_read(m2, meta_ty, M_FLAGS);
        let proj = b.bin(BinOp::Xor, sc, fl);
        let pbits = b.bin(BinOp::And, proj, c255);
        let acc2 = b.add(acc, pbits);
        // insert: every 16th transaction replaces a third slot with a
        // freshly allocated document.
        let c15 = b.i64(15);
        let insbits = b.bin(BinOp::And, s3, c15);
        let do_ins = b.cmp(CmpOp::Eq, insbits, zero64);
        b.branch(do_ins, ins, cont);

        b.switch_to(ins);
        let c33 = b.i64(33);
        let sh33 = b.bin(BinOp::Shr, s3, c33);
        let key3 = b.bin(BinOp::And, sh33, mask);
        let nm = b.new_obj(meta_ty);
        b.field_write(nm, meta_ty, M_VIEWS, amt);
        let nflags = b.bin(BinOp::And, key3, c7);
        b.field_write(nm, meta_ty, M_FLAGS, nflags);
        let nd = b.new_obj(doc_ty);
        let c_ffff = b.i64(0xFFFF);
        let nscore = b.bin(BinOp::And, s3, c_ffff);
        b.field_write(nd, doc_ty, F_SCORE, nscore);
        b.field_write(nd, doc_ty, F_REV, zero64);
        b.field_write(nd, doc_ty, F_META, nm);
        let ntags = b.new_seq(i64t, c_tags);
        let at0 = b.index(0);
        b.mut_write(ntags, at0, amt);
        for slot in 1..TAG_SLOTS {
            let at = b.index(slot);
            b.mut_write(ntags, at, zero64);
        }
        b.field_write(nd, doc_ty, F_TAGS, ntags);
        b.mut_write(store, key3, nd);
        b.mut_write(counts, key3, zero64);
        b.jump(cont);

        b.switch_to(cont);
        let i2 = b.add(i, one_i);
        b.add_phi_incoming(i, cont, i2);
        b.add_phi_incoming(seed, cont, s3);
        b.add_phi_incoming(acc, cont, acc2);
        b.jump(mh);

        // scan-project + filter over the bounded id space.
        b.switch_to(sh);
        let k = b.phi_placeholder(idxt);
        let sacc = b.phi_placeholder(i64t);
        let matched = b.phi_placeholder(i64t);
        b.add_phi_incoming(k, mh, zero_i);
        b.add_phi_incoming(sacc, mh, acc);
        b.add_phi_incoming(matched, mh, zero64);
        let scan_done = b.cmp(CmpOp::Ge, k, c_docs);
        b.branch(scan_done, exit, sb);

        b.switch_to(sb);
        let kc = b.cast(Type::I64, k);
        let skey = b.bin(BinOp::And, kc, mask);
        let present = b.has(store, skey);
        b.branch(present, sp, scont);

        b.switch_to(sp);
        let sd = b.read(store, skey);
        let ssc = b.field_read(sd, doc_ty, F_SCORE);
        let sm = b.field_read(sd, doc_ty, F_META);
        let sv = b.field_read(sm, meta_ty, M_VIEWS);
        let two = b.i64(2);
        let sv2 = b.bin(BinOp::Mul, sv, two);
        let sproj = b.bin(BinOp::Add, ssc, sv2);
        let sacc_hit = b.add(sacc, sproj);
        let odd = b.bin(BinOp::And, ssc, one64);
        let matched_hit = b.add(matched, odd);
        b.jump(scont);

        b.switch_to(scont);
        let sacc2 = b.phi(i64t, vec![(sp, sacc_hit), (sb, sacc)]);
        let matched2 = b.phi(i64t, vec![(sp, matched_hit), (sb, matched)]);
        let k2 = b.add(k, one_i);
        b.add_phi_incoming(k, scont, k2);
        b.add_phi_incoming(sacc, scont, sacc2);
        b.add_phi_incoming(matched, scont, matched2);
        b.jump(sh);

        b.switch_to(exit);
        // Redundant queries for the fusion pass's folding to collapse.
        let sz1 = b.size(store);
        let sz2 = b.size(store);
        let sz3 = b.size(counts);
        let sz4 = b.size(counts);
        let sc1 = b.cast(Type::I64, sz1);
        let sc2 = b.cast(Type::I64, sz2);
        let sc3 = b.cast(Type::I64, sz3);
        let sc4 = b.cast(Type::I64, sz4);
        let szsum1 = b.add(sc1, sc2);
        let szsum2 = b.add(sc3, sc4);
        let szsum = b.add(szsum1, szsum2);
        let three = b.i64(3);
        let mweight = b.bin(BinOp::Mul, matched, three);
        let with_match = b.add(sacc, mweight);
        let total = b.add(with_match, szsum);
        b.returns(&[i64t]);
        b.ret(vec![total]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("docstore");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_analysis::choose_reprs;
    use memoir_interp::{Interp, Value};
    use memoir_ir::Repr;

    fn run(m: &Module, n: i64) -> i64 {
        let mut i = Interp::new(m).with_fuel(200_000_000);
        i.run_by_name("docstore", vec![Value::Int(Type::Index, n)])
            .unwrap()[0]
            .as_int()
            .unwrap()
    }

    #[test]
    fn deterministic_and_nontrivial() {
        let m = build_docstore_ir();
        memoir_ir::verifier::assert_valid(&m);
        let a = run(&m, 2_000);
        assert_eq!(a, run(&m, 2_000));
        // 2 × DOCS from the store size queries plus 2 × DOCS from the
        // counter table, plus whatever the mix and the scan observed.
        assert!(a >= 4 * DOCS as i64, "checksum too small: {a}");
    }

    /// The O3 pipeline (which includes fusion) preserves the checksum
    /// through the nested read→write document chains.
    #[test]
    fn pipeline_o3_preserves_semantics() {
        let m0 = build_docstore_ir();
        let mut m = m0.clone();
        memoir_opt::compile(
            &mut m,
            memoir_opt::OptLevel::O3(memoir_opt::OptConfig::all()),
        )
        .unwrap();
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(run(&m0, 1_500), run(&m, 1_500));
    }

    /// The masked document ids make both the ref-valued store and the
    /// scalar counter table dense-selectable.
    #[test]
    fn repr_analysis_selects_dense_for_both_tables() {
        let m = build_docstore_ir();
        let choices = choose_reprs(&m);
        let dense: Vec<_> = choices
            .values()
            .filter(|r| matches!(r, Repr::Dense { cap } if *cap == DOCS))
            .collect();
        assert_eq!(
            dense.len(),
            2,
            "store and counts must select Dense{{cap: {DOCS}}}: {choices:?}"
        );
    }

    /// Repr-tagged execution keeps the output and only lowers the cost.
    #[test]
    fn adaptive_reprs_preserve_output_and_cost_no_worse() {
        let m = build_docstore_ir();
        let n = 1_200;
        let mut base = Interp::new(&m).with_fuel(200_000_000);
        let out0 = base
            .run_by_name("docstore", vec![Value::Int(Type::Index, n)])
            .unwrap();
        let mut tagged = Interp::new(&m)
            .with_fuel(200_000_000)
            .with_repr_choices(choose_reprs(&m));
        let out1 = tagged
            .run_by_name("docstore", vec![Value::Int(Type::Index, n)])
            .unwrap();
        assert_eq!(out0, out1);
        assert!(
            tagged.stats.cost <= base.stats.cost,
            "repr-tagged cost {} must not exceed default cost {}",
            tagged.stats.cost,
            base.stats.cost
        );
    }
}
