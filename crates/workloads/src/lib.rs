//! # workloads
//!
//! Benchmark workloads reproducing the hot collection behaviour of the
//! paper's evaluation targets (DESIGN.md §2):
//!
//! * [`mcf_ir`] — the Listings 2–3 master/qsort kernel at the IR level
//!   (automatic-DEE target, Table III subject);
//! * [`mcf`] — the runtime-library mcf twin with per-optimization
//!   variants (Figs. 6–9);
//! * [`deepsjeng`] — the transposition-table twin (FE + key folding);
//! * [`optlike`] — the compiler-workload twin (`LLVM opt` analogue);
//! * [`smallbank`] — the assoc-heavy read-modify-write transaction twin
//!   with fusion/dense-representation variants (DESIGN §16);
//! * [`smallbank_ir`] — the same kernel at the IR level (fusion +
//!   adaptive-representation subject);
//! * [`docstore`] — the document-store kernel over nested object graphs
//!   (object-valued fields, ref-valued assoc elements, collections in
//!   fields) at the IR level;
//! * [`suite`] — eleven SPECINT-shaped workloads for the Fig. 1
//!   classification;
//! * [`listing1`] — the stateful-map kernel of Listing 1.

#![warn(missing_docs)]

pub mod deepsjeng;
pub mod deepsjeng_ir;
pub mod docstore;
pub mod listing1;
pub mod mcf;
pub mod mcf_ir;
pub mod optlike;
pub mod optlike_ir;
pub mod smallbank;
pub mod smallbank_ir;
pub mod suite;
pub mod synth_ir;
