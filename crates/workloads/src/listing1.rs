//! Listing 1: the stateful-map kernel.
//!
//! ```c++
//! int work(std::unordered_map<int,int> &map) {
//!     map[0] = 10;
//!     map[1] = 11;
//!     return map[0];
//! }
//! ```
//!
//! In MEMOIR SSA form, `memoir-opt::constprop` forwards the constant 10 to
//! the return; lowered to the low-level IR the map is opaque runtime calls
//! and `lir::constfold` cannot (E11).

use memoir_ir::{Form, Module, ModuleBuilder, Type};

/// Builds the Listing 1 module (mut form): `work() -> i32`.
pub fn build_listing1() -> Module {
    let mut mb = ModuleBuilder::new("listing1");
    mb.func("work", Form::Mut, |b| {
        let i32t = b.ty(Type::I32);
        let map = b.new_assoc(i32t, i32t);
        let k0 = b.i32(0);
        let k1 = b.i32(1);
        let v10 = b.i32(10);
        let v11 = b.i32(11);
        b.mut_write(map, k0, v10);
        b.mut_write(map, k1, v11);
        let r = b.read(map, k0);
        b.returns(&[i32t]);
        b.ret(vec![r]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("work");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_ten() {
        let m = build_listing1();
        memoir_ir::verifier::assert_valid(&m);
        let mut i = memoir_interp::Interp::new(&m);
        let out = i.run_by_name("work", vec![]).unwrap();
        assert_eq!(out, vec![memoir_interp::Value::Int(Type::I32, 10)]);
    }

    /// The headline Listing 1 contrast: MEMOIR folds the read, the
    /// lowered form cannot.
    #[test]
    fn memoir_folds_lowered_does_not() {
        // MEMOIR path: construct SSA, run constprop.
        let mut m = build_listing1();
        memoir_opt::construct_ssa(&mut m).unwrap();
        let stats = memoir_opt::constprop(&mut m);
        assert_eq!(
            stats.element_reads_forwarded, 1,
            "MEMOIR propagates map[0] = 10"
        );

        // Lowered path: the map is opaque calls; constfold cannot fold the
        // read (it is not even a load — it is a call).
        let m2 = build_listing1();
        let lm = memoir_lower::lower_module(&m2).unwrap();
        let mut lm = lm;
        let cf = lir::constfold(&mut lm);
        assert_eq!(cf.load_success, 0, "the lowered map read never folds");
        // And the lowered program still computes 10 at runtime.
        let mut vm = lir::LirMachine::new(&lm);
        assert_eq!(vm.run_by_name("work", vec![]).unwrap(), vec![10]);
    }
}
