//! The mcf runtime twin (paper §VII-C, Figs. 6–9).
//!
//! A network-pricing loop over arc objects, with the hot collections the
//! paper manually ported to MUT: the *arc heap* (objects), the *basket*
//! (a sequence of `(cost, arc)` pairs filtered, refilled, and sorted each
//! round), and — for the field-elision variants — a side collection for
//! the sparsely-used `ident` field. Following the paper's methodology,
//! each optimization variant is the manual application of the §V
//! algorithm (DESIGN.md §2); the automatic passes are validated on the IR
//! kernel (`mcf_ir`).
//!
//! Variant semantics:
//!
//! * **DEE** — the basket sort only materializes the live window
//!   `[0 : B)` (partial quicksort, the recursion-pruning component of
//!   Listing 4 — exact for the live slice);
//! * **FE** — the `ident` field moves to `Assoc<ObjRef, u64>` (hashtable
//!   overhead: slower, bigger);
//! * **FE+RIE** — the assoc becomes a `Seq<u64>` indexed by the special
//!   arc's position (keys removed);
//! * **DFE** — the dead `scratch` field disappears from the layout;
//! * layouts: baseline 72 B → FE 64 B → DFE 64 B → FE+DFE **56 B** (the
//!   paper's packed size).

use memoir_runtime::{stats, Assoc, ObjRef, ObjectHeap, Seq};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct McfParams {
    /// Initial arcs in the basket.
    pub initial_arcs: usize,
    /// Live window: only the cheapest `window_b` arcs are consumed.
    pub window_b: usize,
    /// Fresh candidate arcs appended per round.
    pub append_k: usize,
    /// Pricing rounds.
    pub rounds: usize,
}

impl Default for McfParams {
    fn default() -> Self {
        McfParams {
            initial_arcs: 60_000,
            window_b: 600,
            append_k: 6_000,
            rounds: 6,
        }
    }
}

/// Which manual optimizations the variant applies (the Figs. 8/9 axes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McfVariant {
    /// Dead element elimination (live-window sort).
    pub dee: bool,
    /// Field elision of `ident`.
    pub fe: bool,
    /// Redundant indirection elimination on the elided collection.
    pub rie: bool,
    /// Dead field elimination of `scratch`.
    pub dfe: bool,
}

impl McfVariant {
    /// The paper's ALL configuration.
    pub fn all() -> Self {
        McfVariant {
            dee: true,
            fe: true,
            rie: true,
            dfe: true,
        }
    }
}

/// Outcome: the observable objective plus the memory/cost ledger.
#[derive(Clone, Debug)]
pub struct McfOutcome {
    /// Σ over rounds of the cheapest arc cost (stable under the
    /// live-slice model).
    pub objective: i64,
    /// The ledger snapshot (cost = time proxy, peak = max RSS proxy).
    pub ledger: stats::Ledger,
}

/// Arc payload. The modeled layout (and therefore RSS and field-access
/// cost) is configured on the heap, not by Rust's own layout.
#[derive(Debug, Clone)]
struct Arc {
    cost: i64,
    flow: i64,
    /// Present only conceptually in non-FE layouts; storage modeled by
    /// the heap's layout bytes.
    ident: u64,
}

const LAYOUT_BASE: u64 = 72;
const IDENT_FIELD_BYTES: u64 = 8;
const SCRATCH_FIELD_BYTES: u64 = 8;
/// Fraction of arcs that carry a meaningful `ident` (1 in N).
const SPECIAL_EVERY: u64 = 3;

fn layout_bytes(v: McfVariant) -> u64 {
    let mut b = LAYOUT_BASE;
    if v.fe {
        b -= IDENT_FIELD_BYTES;
    }
    if v.dfe {
        b -= SCRATCH_FIELD_BYTES;
    }
    b
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }

    fn cost(&mut self) -> i64 {
        ((self.next() >> 33) & 0x3FFF) as i64
    }
}

/// Side storage for the elided `ident` field.
enum IdentStore {
    /// Non-FE: the field lives in the object (no side storage).
    Inline,
    /// FE: hashtable keyed by object reference.
    Table(Assoc<u32, u64>),
    /// FE+RIE: sequence indexed by the special-arc ordinal.
    Flat(Seq<u64>),
}

/// Runs the workload; resets the thread ledger first.
pub fn run_mcf(p: &McfParams, v: McfVariant) -> McfOutcome {
    stats::reset();
    let mut heap: ObjectHeap<Arc> = ObjectHeap::new_arena(layout_bytes(v));
    let mut rng = Rng(88172645463325252);
    let mut idents = match (v.fe, v.rie) {
        (false, _) => IdentStore::Inline,
        (true, false) => IdentStore::Table(Assoc::new()),
        (true, true) => IdentStore::Flat(Seq::new()),
    };
    let mut special_count: u64 = 0;

    // The basket: (cost, arc ref) pairs. The special-arc list is the RIE
    // index collection: special arcs are always reached through it, so
    // the elided idents can be re-keyed by its positions.
    let mut basket: Seq<(i64, ObjRef)> = Seq::new();
    let mut specials: Seq<ObjRef> = Seq::new();
    let alloc_arc = |rng: &mut Rng,
                     heap: &mut ObjectHeap<Arc>,
                     idents: &mut IdentStore,
                     specials: &mut Seq<ObjRef>,
                     special_count: &mut u64|
     -> (i64, ObjRef) {
        let cost = rng.cost();
        let special = rng.next().is_multiple_of(SPECIAL_EVERY);
        let ident = rng.next();
        let r = heap.alloc(Arc {
            cost,
            flow: 0,
            ident: 0,
        });
        if special {
            specials.push(r);
            // Store the ident in the variant's location.
            match idents {
                IdentStore::Inline => heap.write(r, |a| a.ident = ident),
                IdentStore::Table(t) => t.write(r.0, ident),
                IdentStore::Flat(s) => s.push(ident),
            }
            *special_count += 1;
        }
        (cost, r)
    };

    for _ in 0..p.initial_arcs {
        let e = alloc_arc(
            &mut rng,
            &mut heap,
            &mut idents,
            &mut specials,
            &mut special_count,
        );
        basket.push(e);
    }

    let mut objective: i64 = 0;
    for _ in 0..p.rounds {
        // 0a. Pricing sweep: mcf's primal_bea_mpp scans *every* arc each
        // major iteration computing reduced costs — the field-read-heavy
        // phase where object packing (DFE/FE) pays.
        let total = heap.live_count();
        for a in 0..total {
            let r = ObjRef(a as u32);
            let (cost, flow) = heap.read(r, |x| (x.cost, x.flow));
            let _ = heap.read(r, |x| x.cost); // second field group (head/tail)
            stats::charge(2.0); // reduced-cost arithmetic
                                // Consume the field reads without perturbing the objective.
            std::hint::black_box((cost, flow));
        }
        // 0b. Special-arc pass through the specials list — the RIE access
        // path `idents[specials[i]]` ⇒ `idents'[i]`.
        for i in 0..specials.size() {
            let r = *specials.read(i);
            let ident = match &mut idents {
                IdentStore::Inline => heap.read(r, |x| x.ident),
                IdentStore::Table(t) => *t.read(&r.0),
                IdentStore::Flat(s) => *s.read(i),
            };
            stats::charge(1.0);
            objective = objective.wrapping_add((ident & 1) as i64);
        }

        // 1. Filter the live window: keep arcs whose current cost stays
        // attractive (reads the cost field — the hot access).
        let upto = p.window_b.min(basket.size());
        let mut kept = 0usize;
        for i in 0..upto {
            let (c, r) = *basket.read(i);
            let cost_now = heap.read(r, |a| a.cost);
            stats::charge(1.0);
            if cost_now % 3 != 0 {
                basket.write(kept, (c, r));
                kept += 1;
            }
        }
        let len = basket.size();
        basket.remove_range(kept, len);

        // 2. Refill with fresh candidates.
        for _ in 0..p.append_k {
            let e = alloc_arc(
                &mut rng,
                &mut heap,
                &mut idents,
                &mut specials,
                &mut special_count,
            );
            basket.push(e);
        }

        // 3. Sort (full, or only the live window under DEE).
        let n = basket.size();
        if v.dee {
            qsort_window(&mut basket, 0, n, p.window_b);
        } else {
            qsort(&mut basket, 0, n);
        }

        // 4. Price the live window: read object fields of the cheapest
        // arcs and push flow.
        let scan = p.window_b.min(basket.size());
        for i in 0..scan {
            let (_, r) = *basket.read(i);
            let cost_now = heap.read(r, |a| a.cost);
            stats::charge(1.0);
            if cost_now % 2 == 0 {
                heap.write(r, |a| a.flow += 1);
            }
        }

        // 5. Consume the cheapest arc.
        if !basket.is_empty() {
            objective += basket.read(0).0;
        }
    }
    McfOutcome {
        objective,
        ledger: stats::snapshot(),
    }
}

/// Lomuto quicksort over the basket by cost.
fn qsort(s: &mut Seq<(i64, ObjRef)>, lo: usize, hi: usize) {
    if hi.saturating_sub(lo) <= 1 {
        return;
    }
    let p = partition(s, lo, hi);
    qsort(s, lo, p);
    qsort(s, p + 1, hi);
}

/// The DEE variant: only recursions intersecting `[0 : b)` run — the
/// recursion-pruning component of the specialized Listing 4 kernel.
/// Exact for the live slice.
fn qsort_window(s: &mut Seq<(i64, ObjRef)>, lo: usize, hi: usize, b: usize) {
    if hi.saturating_sub(lo) <= 1 || lo >= b {
        stats::charge(1.0); // the entry guard
        return;
    }
    let p = partition(s, lo, hi);
    qsort_window(s, lo, p, b);
    qsort_window(s, p + 1, hi, b);
}

fn partition(s: &mut Seq<(i64, ObjRef)>, lo: usize, hi: usize) -> usize {
    let pivot = s.read(hi - 1).0;
    let mut store = lo;
    for i in lo..hi - 1 {
        stats::charge(2.0); // compare + loop
        if s.read(i).0 < pivot {
            s.swap(i, store);
            store += 1;
        }
    }
    s.swap(store, hi - 1);
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> McfParams {
        McfParams {
            initial_arcs: 2_000,
            window_b: 100,
            append_k: 800,
            rounds: 4,
        }
    }

    #[test]
    fn deterministic_objective() {
        let a = run_mcf(&small(), McfVariant::default());
        let b = run_mcf(&small(), McfVariant::default());
        assert_eq!(a.objective, b.objective);
        assert!(a.objective > 0);
    }

    /// The DEE sort is exact for the live slice: objectives match.
    #[test]
    fn dee_is_exact_for_the_live_slice() {
        let base = run_mcf(&small(), McfVariant::default());
        let dee = run_mcf(
            &small(),
            McfVariant {
                dee: true,
                ..Default::default()
            },
        );
        assert_eq!(base.objective, dee.objective);
        assert!(
            dee.ledger.cost < base.ledger.cost,
            "DEE must be cheaper: {} vs {}",
            dee.ledger.cost,
            base.ledger.cost
        );
    }

    /// FE and DFE change layout, not semantics.
    #[test]
    fn layout_variants_preserve_objective() {
        let base = run_mcf(&small(), McfVariant::default());
        for v in [
            McfVariant {
                fe: true,
                ..Default::default()
            },
            McfVariant {
                fe: true,
                rie: true,
                ..Default::default()
            },
            McfVariant {
                dfe: true,
                ..Default::default()
            },
            McfVariant::all(),
        ] {
            let out = run_mcf(&small(), v);
            assert_eq!(out.objective, base.objective, "{v:?}");
        }
    }

    /// The paper's Figs. 8/9 shape (§VII-C): DEE big speedup; FE alone
    /// slower and bigger; FE+RIE smaller than baseline; FE+DFE much
    /// smaller; ALL fastest-or-close with the full memory win.
    #[test]
    fn figure8_and_9_shape() {
        let p = McfParams::default();
        let base = run_mcf(&p, McfVariant::default());
        let dee = run_mcf(
            &p,
            McfVariant {
                dee: true,
                ..Default::default()
            },
        );
        let fe = run_mcf(
            &p,
            McfVariant {
                fe: true,
                ..Default::default()
            },
        );
        let fe_rie = run_mcf(
            &p,
            McfVariant {
                fe: true,
                rie: true,
                ..Default::default()
            },
        );
        let fe_dfe = run_mcf(
            &p,
            McfVariant {
                fe: true,
                dfe: true,
                ..Default::default()
            },
        );
        let all = run_mcf(&p, McfVariant::all());

        let t = |o: &McfOutcome| o.ledger.cost / base.ledger.cost - 1.0;
        let r = |o: &McfOutcome| o.ledger.peak_bytes as f64 / base.ledger.peak_bytes as f64 - 1.0;

        // Execution time shape.
        assert!(t(&dee) < -0.15, "DEE speedup ≥15%: {}", t(&dee));
        assert!(t(&fe) > 0.02, "FE alone slows down: {}", t(&fe));
        assert!(t(&fe_rie) < t(&fe), "RIE recovers FE's slowdown");
        assert!(
            t(&all) < t(&dee) + 0.02,
            "ALL keeps the DEE win: {} vs {}",
            t(&all),
            t(&dee)
        );

        // Max RSS shape.
        assert!(r(&fe) > 0.005, "FE alone grows RSS: {}", r(&fe));
        assert!(r(&fe_rie) < -0.02, "FE+RIE shrinks RSS: {}", r(&fe_rie));
        // (The paper's −20.8% "combined with DFE" figure appears to
        // include RIE; without it the hashtable overhead eats part of the
        // win — see EXPERIMENTS.md.)
        assert!(r(&fe_dfe) < -0.04, "FE+DFE shrinks RSS: {}", r(&fe_dfe));
        assert!(r(&all) < -0.10, "ALL keeps the memory win: {}", r(&all));
    }
}
