//! The mcf kernel at the IR level (paper Listings 2–3).
//!
//! `master` maintains a basket of arc costs across pricing rounds: each
//! round it filters the first `B` elements of the previous basket, appends
//! `K` freshly generated candidates, quick-sorts the basket, and consumes
//! the cheapest element. `qsort` is a recursive Lomuto quicksort over the
//! MUT sequence, written with the redundant-but-free index clamps
//! (`max(lo, min(store, hi-1))`) that real code carries for safety and
//! that the symbolic index range analysis consumes to compute the
//! write-range summary `[lo : hi)`.
//!
//! The kernel is the target of automatic Dead Element Elimination: only
//! `[0 : B)` of the sorted basket is ever observed, so
//! `dee_specialize_calls` clones `qsort` with `%a`/`%b` live bounds,
//! guards its swaps (Listing 4), threads the bounds through the recursion,
//! and prunes recursive calls that cannot touch the live slice — the
//! `O(n log n) → O(n + B log B)` effect of §VII-C.

use memoir_ir::{BinOp, Callee, CmpOp, Form, Function, FunctionBuilder, Module, Type};

/// Builds the mcf kernel module. `master(n0, B, K, rounds) -> i64` returns
/// the accumulated objective (the sum over rounds of the cheapest arc).
pub fn build_mcf_ir() -> Module {
    let mut module = Module::new("mcf");

    // ------------------------------------------------------------- qsort
    let qsort_id = {
        // Create a placeholder first so the recursive calls can refer to it.
        let placeholder = Function::new("qsort", Form::Mut);
        module.add_func(placeholder)
    };
    let qsort = {
        let mut b = FunctionBuilder::new(&mut module.types, "qsort", Form::Mut);
        let i64t = b.ty(Type::I64);
        let idxt = b.ty(Type::Index);
        let seqt = b.types.seq_of(i64t);
        let s = b.param_ref("S", seqt);
        let lo = b.param("lo", idxt);
        let hi = b.param("hi", idxt);

        let body = b.block("body");
        let done = b.block("done");
        // if hi <= lo + 1: return  (ranges of size 0/1 are sorted)
        let one = b.index(1);
        let lo1 = b.add(lo, one);
        let trivial = b.cmp(CmpOp::Le, hi, lo1);
        b.branch(trivial, done, body);
        b.switch_to(done);
        b.ret(vec![]);

        b.switch_to(body);
        let pivot_idx = b.sub(hi, one);
        let pivot = b.read(s, pivot_idx);

        let header = b.block("header");
        let scan = b.block("scan");
        let do_swap = b.block("do_swap");
        let latch = b.block("latch");
        let after = b.block("after");
        b.jump(header);

        b.switch_to(header);
        let i = b.phi_placeholder(idxt);
        let store = b.phi_placeholder(idxt);
        b.add_phi_incoming(i, body, lo);
        b.add_phi_incoming(store, body, lo);
        b.name(i, "i");
        b.name(store, "store");
        let scan_done = b.cmp(CmpOp::Ge, i, pivot_idx);
        b.branch(scan_done, after, scan);

        b.switch_to(scan);
        let v = b.read(s, i);
        let below = b.cmp(CmpOp::Lt, v, pivot);
        b.branch(below, do_swap, latch);

        b.switch_to(do_swap);
        // Clamped swap target (identity at runtime; bounds the write range
        // symbolically): sw = max(lo, min(store, hi - 1)).
        let m1 = b.bin(BinOp::Min, store, pivot_idx);
        let sw = b.bin(BinOp::Max, lo, m1);
        let ip1 = b.add(i, one);
        b.mut_swap(s, i, ip1, sw);
        let store_inc = b.add(store, one);
        b.jump(latch);

        b.switch_to(latch);
        let store_next = b.phi(idxt, vec![(do_swap, store_inc), (scan, store)]);
        let i_next = b.add(i, one);
        b.add_phi_incoming(i, latch, i_next);
        b.add_phi_incoming(store, latch, store_next);
        b.jump(header);

        b.switch_to(after);
        // Final pivot placement: swap(S, sw2, sw2+1, pivot_idx).
        let m2 = b.bin(BinOp::Min, store, pivot_idx);
        let sw2 = b.bin(BinOp::Max, lo, m2);
        let sw2p1 = b.add(sw2, one);
        b.mut_swap(s, sw2, sw2p1, pivot_idx);
        // Recurse on [lo : sw2) and [sw2+1 : hi).
        b.call(Callee::Func(qsort_id), vec![s, lo, sw2], &[]);
        b.call(Callee::Func(qsort_id), vec![s, sw2p1, hi], &[]);
        b.ret(vec![]);
        b.finish()
    };
    module.funcs[qsort_id] = qsort;

    // ------------------------------------------------------------ master
    let master = {
        let mut b = FunctionBuilder::new(&mut module.types, "master", Form::Mut);
        let i64t = b.ty(Type::I64);
        let idxt = b.ty(Type::Index);
        let n0 = b.param("n0", idxt);
        let big_b = b.param("B", idxt);
        let big_k = b.param("K", idxt);
        let rounds = b.param("rounds", idxt);

        let zero_i = b.index(0);
        let one_i = b.index(1);
        let s = b.new_seq(i64t, zero_i);
        b.name(s, "S_basket");
        let seed0 = b.i64(88172645463325252);

        // Initial fill: for t in 0..n0 { seed = lcg(seed); push(cost) }.
        let fill_h = b.block("fill_h");
        let fill_b = b.block("fill_b");
        let fill_done = b.block("fill_done");
        let entry = b.func.entry;
        b.jump(fill_h);
        b.switch_to(fill_h);
        let t = b.phi_placeholder(idxt);
        let seed_f = b.phi_placeholder(i64t);
        b.add_phi_incoming(t, entry, zero_i);
        b.add_phi_incoming(seed_f, entry, seed0);
        let f_done = b.cmp(CmpOp::Ge, t, n0);
        b.branch(f_done, fill_done, fill_b);
        b.switch_to(fill_b);
        let (seed_f2, cost_f) = lcg_step(&mut b, seed_f);
        let sz = b.size(s);
        b.mut_insert(s, sz, Some(cost_f));
        let t2 = b.add(t, one_i);
        b.add_phi_incoming(t, fill_b, t2);
        b.add_phi_incoming(seed_f, fill_b, seed_f2);
        b.jump(fill_h);

        // Pricing rounds.
        b.switch_to(fill_done);
        let round_h = b.block("round_h");
        let round_b = b.block("round_b");
        let exit = b.block("exit");
        b.jump(round_h);
        b.switch_to(round_h);
        let r = b.phi_placeholder(idxt);
        let obj = b.phi_placeholder(i64t);
        let seed_r = b.phi_placeholder(i64t);
        let zero64 = b.i64(0);
        b.add_phi_incoming(r, fill_done, zero_i);
        b.add_phi_incoming(obj, fill_done, zero64);
        b.add_phi_incoming(seed_r, fill_done, seed_f);
        let r_done = b.cmp(CmpOp::Ge, r, rounds);
        b.branch(r_done, exit, round_b);

        b.switch_to(round_b);
        // --- 1. Compact the kept prefix in place: j counts kept elements.
        // for i in 0..B: if i >= size(S) break; v = S[i]; if keep: S[j]=v; j++
        let flt_h = b.block("flt_h");
        let flt_chk = b.block("flt_chk");
        let flt_b = b.block("flt_b");
        let flt_keep = b.block("flt_keep");
        let flt_latch = b.block("flt_latch");
        let flt_done = b.block("flt_done");
        b.jump(flt_h);
        b.switch_to(flt_h);
        let fi = b.phi_placeholder(idxt);
        let fj = b.phi_placeholder(idxt);
        b.name(fi, "i");
        b.name(fj, "j");
        b.add_phi_incoming(fi, round_b, zero_i);
        b.add_phi_incoming(fj, round_b, zero_i);
        let f_at_b = b.cmp(CmpOp::Ge, fi, big_b);
        b.branch(f_at_b, flt_done, flt_chk);
        b.switch_to(flt_chk);
        let cur_sz = b.size(s);
        let past_end = b.cmp(CmpOp::Ge, fi, cur_sz);
        b.branch(past_end, flt_done, flt_b);
        b.switch_to(flt_b);
        let v = b.read(s, fi);
        // check_cost: keep arcs with even cost (a deterministic ~50% filter).
        let two64 = b.i64(2);
        let rem = b.bin(BinOp::Rem, v, two64);
        let keep = b.cmp(CmpOp::Eq, rem, zero64);
        b.branch(keep, flt_keep, flt_latch);
        b.switch_to(flt_keep);
        b.mut_write(s, fj, v);
        let fj_inc = b.add(fj, one_i);
        b.jump(flt_latch);
        b.switch_to(flt_latch);
        let fj_next = b.phi(idxt, vec![(flt_keep, fj_inc), (flt_b, fj)]);
        let fi_next = b.add(fi, one_i);
        b.add_phi_incoming(fi, flt_latch, fi_next);
        b.add_phi_incoming(fj, flt_latch, fj_next);
        b.jump(flt_h);

        b.switch_to(flt_done);
        // --- 2. Drop everything past the kept prefix.
        let end_sz = b.size(s);
        b.mut_remove_range(s, fj, end_sz);
        // --- 3. Append K fresh candidates.
        let app_h = b.block("app_h");
        let app_b = b.block("app_b");
        let app_done = b.block("app_done");
        b.jump(app_h);
        b.switch_to(app_h);
        let ai = b.phi_placeholder(idxt);
        let seed_a = b.phi_placeholder(i64t);
        b.add_phi_incoming(ai, flt_done, zero_i);
        b.add_phi_incoming(seed_a, flt_done, seed_r);
        let a_done = b.cmp(CmpOp::Ge, ai, big_k);
        b.branch(a_done, app_done, app_b);
        b.switch_to(app_b);
        let (seed_a2, cost_a) = lcg_step(&mut b, seed_a);
        let asz = b.size(s);
        b.mut_insert(s, asz, Some(cost_a));
        let ai2 = b.add(ai, one_i);
        b.add_phi_incoming(ai, app_b, ai2);
        b.add_phi_incoming(seed_a, app_b, seed_a2);
        b.jump(app_h);

        b.switch_to(app_done);
        // --- 4. Sort the basket.
        let sort_sz = b.size(s);
        b.call(Callee::Func(qsort_id), vec![s, zero_i, sort_sz], &[]);
        // --- 5. Consume the cheapest arc (guarded for an empty basket).
        let have = b.block("have");
        let none = b.block("none");
        let round_end = b.block("round_end");
        let after_sz = b.size(s);
        let nonempty = b.cmp(CmpOp::Gt, after_sz, zero_i);
        b.branch(nonempty, have, none);
        b.switch_to(have);
        let best = b.read(s, zero_i);
        b.jump(round_end);
        b.switch_to(none);
        b.jump(round_end);
        b.switch_to(round_end);
        let picked = b.phi(i64t, vec![(have, best), (none, zero64)]);
        let obj2 = b.add(obj, picked);
        let r2 = b.add(r, one_i);
        b.add_phi_incoming(r, round_end, r2);
        b.add_phi_incoming(obj, round_end, obj2);
        b.add_phi_incoming(seed_r, round_end, seed_a);
        b.jump(round_h);

        b.switch_to(exit);
        b.returns(&[i64t]);
        b.ret(vec![obj]);
        b.finish()
    };
    let master_id = module.add_func(master);
    module.entry = Some(master_id);
    module
}

/// Emits one xorshift step plus cost derivation, returning
/// `(next_seed, cost)` with `cost ∈ [0, 16384)`.
fn lcg_step(
    b: &mut FunctionBuilder<'_>,
    seed: memoir_ir::ValueId,
) -> (memoir_ir::ValueId, memoir_ir::ValueId) {
    // xorshift64: s ^= s << 13; s ^= s >> 7; s ^= s << 17.
    let c13 = b.i64(13);
    let c7 = b.i64(7);
    let c17 = b.i64(17);
    let s1 = {
        let t = b.bin(BinOp::Shl, seed, c13);
        b.bin(BinOp::Xor, seed, t)
    };
    let s2 = {
        let t = b.bin(BinOp::Shr, s1, c7);
        b.bin(BinOp::Xor, s1, t)
    };
    let s3 = {
        let t = b.bin(BinOp::Shl, s2, c17);
        b.bin(BinOp::Xor, s2, t)
    };
    let mask = b.i64(0x3FFF);
    let c33 = b.i64(33);
    let hi = b.bin(BinOp::Shr, s3, c33);
    let cost = b.bin(BinOp::And, hi, mask);
    (s3, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_interp::{Interp, Value};

    fn run_master(
        m: &Module,
        n0: i64,
        b: i64,
        k: i64,
        rounds: i64,
    ) -> (i64, memoir_interp::ExecStats) {
        let mut i = Interp::new(m).with_fuel(2_000_000_000);
        let out = i
            .run_by_name(
                "master",
                vec![
                    Value::Int(Type::Index, n0),
                    Value::Int(Type::Index, b),
                    Value::Int(Type::Index, k),
                    Value::Int(Type::Index, rounds),
                ],
            )
            .unwrap();
        (out[0].as_int().unwrap(), i.stats)
    }

    #[test]
    fn kernel_verifies_and_runs() {
        let m = build_mcf_ir();
        memoir_ir::verifier::assert_valid(&m);
        let (obj, _) = run_master(&m, 64, 8, 16, 3);
        assert!(obj > 0, "objective accumulates cheapest arcs: {obj}");
        // Deterministic.
        let (obj2, _) = run_master(&m, 64, 8, 16, 3);
        assert_eq!(obj, obj2);
    }

    /// The headline automation test (E12), exact mode: SSA construction +
    /// DEE call specialization fire on the kernel with pruning-only
    /// specialization (a partial quicksort), which is provably exact for
    /// the live window — objectives match bit-for-bit while the execution
    /// cost collapses (the O(n log n) → O(n + B log B) effect of §VII-C).
    #[test]
    fn automatic_dee_exact_mode_specializes_qsort() {
        let mut m = build_mcf_ir();
        memoir_opt::construct_ssa(&mut m).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let stats = memoir_opt::dee_specialize_calls_with(&mut m, memoir_opt::DeeOptions::exact());
        assert_eq!(stats.functions_specialized, 1, "{stats:?}");
        assert_eq!(stats.calls_specialized, 1, "{stats:?}");
        assert!(stats.recursive_calls_pruned >= 1, "{stats:?}");
        memoir_ir::verifier::assert_valid(&m);
        memoir_opt::destruct_ssa(&mut m);
        memoir_ir::verifier::assert_valid(&m);

        let baseline = build_mcf_ir();
        for (n0, b, k, rounds) in [(200i64, 8i64, 50i64, 1i64), (400, 16, 150, 4)] {
            let (ob, _) = run_master(&baseline, n0, b, k, rounds);
            let (od, _) = run_master(&m, n0, b, k, rounds);
            assert_eq!(
                ob, od,
                "exact mode preserves the objective ({n0},{b},{k},{rounds})"
            );
        }

        // Complexity: with a large basket and a small live window the
        // specialized kernel does far less sorting work. (Kept small so
        // the debug-mode interpreter stays fast; the bench harness runs
        // the full-size sweep.)
        let (_, s_base) = run_master(&baseline, 900, 8, 450, 2);
        let (_, s_dee) = run_master(&m, 900, 8, 450, 2);
        assert!(
            s_dee.cost < s_base.cost * 0.75,
            "DEE must cut ≥25% of the cost: base={} dee={}",
            s_base.cost,
            s_dee.cost
        );
    }

    /// The faithful Listing-4 mode (guarded half-swaps): structurally the
    /// paper's rewrite, exact on small windows that cover the basket, and
    /// approximate on the dead region otherwise (the paper's live-slice
    /// correctness model for mcf — DESIGN.md §6).
    #[test]
    fn automatic_dee_listing4_mode() {
        let mut m = build_mcf_ir();
        memoir_opt::construct_ssa(&mut m).unwrap();
        let stats = memoir_opt::dee_specialize_calls(&mut m);
        assert!(stats.swaps_guarded >= 2, "{stats:?}");
        assert!(stats.recursive_calls_pruned >= 1, "{stats:?}");
        memoir_ir::verifier::assert_valid(&m);
        memoir_opt::destruct_ssa(&mut m);
        memoir_ir::verifier::assert_valid(&m);

        let baseline = build_mcf_ir();
        // When the live window covers the whole basket the guards are
        // always true and the result is exact.
        let (ob, _) = run_master(&baseline, 30, 64, 10, 3);
        let (od, _) = run_master(&m, 30, 64, 10, 3);
        assert_eq!(ob, od, "full-window run is exact");

        // Narrow window: the dead region goes stale (the documented
        // live-slice approximation — real mcf tolerates it because it
        // re-prices every arc each iteration), and the sort work
        // collapses. The picked values remain genuine basket costs.
        let (ob, s_base) = run_master(&baseline, 900, 8, 450, 2);
        let (od, s_dee) = run_master(&m, 900, 8, 450, 2);
        assert!(
            (0..4 * 16384).contains(&od),
            "picked values stay in range: base={ob} dee={od}"
        );
        assert!(
            s_dee.cost < s_base.cost * 0.75,
            "base={} dee={}",
            s_base.cost,
            s_dee.cost
        );
    }

    #[test]
    fn qsort_sorts_the_basket() {
        // One round, no filtering matters: after master the cheapest must
        // be the true minimum of the generated costs. Cross-check by
        // simulating the same xorshift in Rust.
        let m = build_mcf_ir();
        let (obj, _) = run_master(&m, 50, 4, 0, 1);
        let mut seed: i64 = 88172645463325252;
        let mut costs = Vec::new();
        for _ in 0..50 {
            seed ^= seed << 13;
            seed ^= ((seed as u64) >> 7) as i64;
            seed ^= seed << 17;
            costs.push((((seed as u64) >> 33) & 0x3FFF) as i64);
        }
        // Round 1: filter keeps even costs of the first B=4... but the
        // basket is unsorted before round 1's filter, so the kept prefix
        // is the first 4 generated costs filtered for evenness, then
        // sorted; the consumed best is the minimum of the kept ones.
        let kept: Vec<i64> = costs[..4].iter().copied().filter(|c| c % 2 == 0).collect();
        let expect = kept.iter().copied().min().unwrap_or(0);
        assert_eq!(obj, expect);
    }
}
