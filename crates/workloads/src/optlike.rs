//! The `LLVM opt` runtime twin: a middle-end-shaped workload — value
//! numbering with a hash-consing table, a worklist pass over instruction
//! objects, and per-block instruction sequences. The paper evaluated opt
//! for compilation-time and collection counts only (§VII-B: the MEMOIR
//! optimizations were not applicable), and we use it the same way, plus as
//! a Fig. 1 classification subject.

use memoir_runtime::{stats, Assoc, ObjRef, ObjectHeap, Seq};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct OptlikeParams {
    /// Instructions to generate.
    pub insts: usize,
    /// Basic blocks.
    pub blocks: usize,
    /// Worklist passes.
    pub passes: usize,
}

impl Default for OptlikeParams {
    fn default() -> Self {
        OptlikeParams {
            insts: 60_000,
            blocks: 400,
            passes: 3,
        }
    }
}

/// Outcome.
#[derive(Clone, Debug)]
pub struct OptlikeOutcome {
    /// Number of redundant instructions discovered (the GVN hit count).
    pub redundant: usize,
    /// Ledger snapshot.
    pub ledger: stats::Ledger,
}

#[derive(Debug, Clone, Copy)]
struct SynthInst {
    opcode: u8,
    lhs: u32,
    rhs: u32,
    value_number: u32,
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }
}

/// Runs the workload; resets the thread ledger first.
pub fn run_optlike(p: &OptlikeParams) -> OptlikeOutcome {
    stats::reset();
    let mut heap: ObjectHeap<SynthInst> = ObjectHeap::new(32);
    let mut rng = Rng(0x243F6A8885A308D3);

    // Blocks: sequences of instruction refs.
    let mut blocks: Seq<Seq<u32>> = Seq::new();
    let mut all: Seq<ObjRef> = Seq::new();
    for _ in 0..p.blocks {
        blocks.push(Seq::new());
    }
    for i in 0..p.insts {
        let r = heap.alloc(SynthInst {
            opcode: (rng.next() % 12) as u8,
            lhs: (rng.next() % 64) as u32,
            rhs: (rng.next() % 64) as u32,
            value_number: u32::MAX,
        });
        all.push(r);
        let b = (rng.next() % p.blocks as u64) as usize;
        // Store the instruction ordinal in its block.
        let mut blk = blocks.read(b).clone();
        blk.push(i as u32);
        blocks.write(b, blk);
    }

    // Value numbering passes: expression → value number via hash consing.
    let mut redundant = 0usize;
    for _ in 0..p.passes {
        let mut table: Assoc<u64, u32> = Assoc::new();
        let mut next_vn: u32 = 0;
        for i in 0..all.size() {
            let r = *all.read(i);
            let (op, l, rr) = heap.read(r, |x| (x.opcode, x.lhs, x.rhs));
            let key = ((op as u64) << 56) ^ ((l as u64) << 28) ^ rr as u64;
            stats::charge(2.0);
            if table.contains(&key) {
                let vn = *table.read(&key);
                heap.write(r, |x| x.value_number = vn);
                redundant += 1;
            } else {
                table.write(key, next_vn);
                heap.write(r, |x| x.value_number = next_vn);
                next_vn += 1;
            }
        }
    }
    OptlikeOutcome {
        redundant,
        ledger: stats::snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_hits() {
        let p = OptlikeParams {
            insts: 5_000,
            blocks: 50,
            passes: 2,
        };
        let a = run_optlike(&p);
        let b = run_optlike(&p);
        assert_eq!(a.redundant, b.redundant);
        assert!(a.redundant > 0, "hash consing finds duplicates");
    }

    #[test]
    fn traffic_spans_classes() {
        let p = OptlikeParams {
            insts: 5_000,
            blocks: 50,
            passes: 1,
        };
        let out = run_optlike(&p);
        use memoir_runtime::CollectionClass as C;
        assert!(out.ledger.class(C::Object).allocated > 0);
        assert!(out.ledger.class(C::Associative).allocated > 0);
        assert!(out.ledger.class(C::Sequential).allocated > 0);
    }
}
