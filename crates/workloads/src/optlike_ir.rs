//! The `opt` kernel at the IR level — hash-consing value numbering over a
//! synthetic instruction stream — the third Table III compilation subject.

use memoir_ir::{BinOp, CmpOp, Form, Module, ModuleBuilder, Type};

/// Builds the opt kernel: `gvn(insts: index) -> i64` returns the number of
/// redundant expressions found.
pub fn build_optlike_ir() -> Module {
    let mut mb = ModuleBuilder::new("optlike");
    mb.func("gvn", Form::Mut, |b| {
        let idxt = b.ty(Type::Index);
        let i64t = b.ty(Type::I64);
        let insts = b.param("insts", idxt);
        // Expression table: key → value number; worklist of keys.
        let table = b.new_assoc(i64t, i64t);
        let keys = {
            let zero = b.index(0);
            b.new_seq(i64t, zero)
        };
        let seed0 = b.i64(0x243F6A8885A308);
        let zero64 = b.i64(0);
        let zero_i = b.index(0);
        let one_i = b.index(1);

        let header = b.block("header");
        let body = b.block("body");
        let hit = b.block("hit");
        let miss = b.block("miss");
        let cont = b.block("cont");
        let exit = b.block("exit");
        let entry = b.func.entry;
        b.jump(header);
        b.switch_to(header);
        let i = b.phi_placeholder(idxt);
        let seed = b.phi_placeholder(i64t);
        let vn = b.phi_placeholder(i64t);
        let red = b.phi_placeholder(i64t);
        b.add_phi_incoming(i, entry, zero_i);
        b.add_phi_incoming(seed, entry, seed0);
        b.add_phi_incoming(vn, entry, zero64);
        b.add_phi_incoming(red, entry, zero64);
        let done = b.cmp(CmpOp::Ge, i, insts);
        b.branch(done, exit, body);

        b.switch_to(body);
        // xorshift and key derivation (few distinct keys ⇒ hits).
        let c13 = b.i64(13);
        let c7 = b.i64(7);
        let c17 = b.i64(17);
        let t1 = b.bin(BinOp::Shl, seed, c13);
        let s1 = b.bin(BinOp::Xor, seed, t1);
        let t2 = b.bin(BinOp::Shr, s1, c7);
        let s2 = b.bin(BinOp::Xor, s1, t2);
        let t3 = b.bin(BinOp::Shl, s2, c17);
        let s3 = b.bin(BinOp::Xor, s2, t3);
        let kmask = b.i64(0x3FF);
        let key = b.bin(BinOp::And, s3, kmask);
        let present = b.has(table, key);
        b.branch(present, hit, miss);

        b.switch_to(hit);
        let _existing = b.read(table, key);
        let one64 = b.i64(1);
        let red2 = b.add(red, one64);
        b.jump(cont);

        b.switch_to(miss);
        b.mut_write(table, key, vn);
        let ksz = b.size(keys);
        b.mut_insert(keys, ksz, Some(key));
        let one64b = b.i64(1);
        let vn2 = b.add(vn, one64b);
        b.jump(cont);

        b.switch_to(cont);
        let red3 = b.phi(i64t, vec![(hit, red2), (miss, red)]);
        let vn3 = b.phi(i64t, vec![(hit, vn), (miss, vn2)]);
        let i2 = b.add(i, one_i);
        b.add_phi_incoming(i, cont, i2);
        b.add_phi_incoming(seed, cont, s3);
        b.add_phi_incoming(vn, cont, vn3);
        b.add_phi_incoming(red, cont, red3);
        b.jump(header);

        b.switch_to(exit);
        b.returns(&[i64t]);
        b.ret(vec![red]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("gvn");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_interp::{Interp, Value};

    fn run(m: &Module, n: i64) -> i64 {
        let mut i = Interp::new(m).with_fuel(200_000_000);
        i.run_by_name("gvn", vec![Value::Int(Type::Index, n)])
            .unwrap()[0]
            .as_int()
            .unwrap()
    }

    #[test]
    fn finds_redundancies() {
        let m = build_optlike_ir();
        memoir_ir::verifier::assert_valid(&m);
        let red = run(&m, 5000);
        assert!(
            red > 3000,
            "1024 distinct keys over 5000 draws ⇒ many hits: {red}"
        );
    }

    #[test]
    fn pipeline_o0_round_trip() {
        let m0 = build_optlike_ir();
        let mut m = m0.clone();
        let report = memoir_opt::compile(&mut m, memoir_opt::OptLevel::O0).unwrap();
        assert_eq!(report.destruct_copies, 0);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(run(&m0, 3000), run(&m, 3000));
    }
}
