//! The Smallbank runtime twin (DESIGN §16): an associative-heavy
//! read-modify-write transaction mix over two account tables keyed by a
//! bounded customer id.
//!
//! Smallbank is the canonical RMW microbenchmark: nearly every
//! transaction reads a balance, combines it with an amount, and writes
//! it back to the *same* key. That access shape is exactly what the two
//! tentpole optimizations target, so — following the paper's methodology
//! of manually applying each optimization to the runtime twin while the
//! automatic passes are validated on the IR kernel ([`crate::smallbank_ir`]) —
//! the variants are:
//!
//! * **fused** — each balance update is a single-pass [`Assoc::rmw`] /
//!   [`DenseMap::rmw`] (one probe) instead of `read` + `write` (two
//!   probes): the manual image of the fusion pass's `read→bin→write ⇒
//!   RMW` rewrite;
//! * **dense** — the account tables become [`DenseMap`]s over the
//!   customer-id bound: the manual image of adaptive representation
//!   selection proving `key = h & (N-1)` bounded and picking the
//!   direct-indexed layout over the hashtable.
//!
//! Both are semantics-preserving (the objective is identical across all
//! four variants) and strictly cheaper on the ledger's cost and — for
//! dense — footprint axes.

use memoir_runtime::{stats, Assoc, DenseMap};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct SmallbankParams {
    /// Number of customers; must be a power of two (ids are masked).
    pub customers: usize,
    /// Transactions to run.
    pub txns: usize,
}

impl Default for SmallbankParams {
    fn default() -> Self {
        SmallbankParams {
            customers: 1_024,
            txns: 40_000,
        }
    }
}

/// Which manual optimizations the variant applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmallbankVariant {
    /// Fused single-pass RMW instead of read + write.
    pub fused: bool,
    /// Dense direct-indexed tables instead of hashtables.
    pub dense: bool,
}

impl SmallbankVariant {
    /// Both optimizations on.
    pub fn all() -> Self {
        SmallbankVariant {
            fused: true,
            dense: true,
        }
    }
}

/// Outcome: the observable objective plus the memory/cost ledger.
#[derive(Clone, Debug)]
pub struct SmallbankOutcome {
    /// Checksum over balances observed by the transaction mix plus the
    /// final sum of all accounts.
    pub objective: i64,
    /// The ledger snapshot (cost = time proxy, peak = max RSS proxy).
    pub ledger: stats::Ledger,
}

/// One account table in the variant's representation.
enum Table {
    Hash(Assoc<u64, i64>),
    Dense(DenseMap<i64>),
}

impl Table {
    fn new(dense: bool, cap: usize) -> Table {
        if dense {
            Table::Dense(DenseMap::new(cap))
        } else {
            Table::Hash(Assoc::new())
        }
    }

    fn read(&self, k: u64) -> i64 {
        match self {
            Table::Hash(t) => *t.read(&k),
            Table::Dense(t) => *t.read(k as usize),
        }
    }

    fn write(&mut self, k: u64, v: i64) {
        match self {
            Table::Hash(t) => t.write(k, v),
            Table::Dense(t) => t.write(k as usize, v),
        }
    }

    /// `t[k] = op(t[k])`: one storage pass when fused, read-then-write
    /// when not. Returns the new value (the transaction observes it).
    fn rmw(&mut self, fused: bool, k: u64, op: impl Fn(i64) -> i64) -> i64 {
        if fused {
            let mut out = 0;
            match self {
                Table::Hash(t) => t.rmw(&k, |v| {
                    out = op(*v);
                    out
                }),
                Table::Dense(t) => t.rmw(k as usize, |v| {
                    out = op(*v);
                    out
                }),
            }
            out
        } else {
            let v = op(self.read(k));
            self.write(k, v);
            v
        }
    }
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }
}

/// Runs the workload; resets the thread ledger first.
pub fn run_smallbank(p: &SmallbankParams, v: SmallbankVariant) -> SmallbankOutcome {
    assert!(p.customers.is_power_of_two(), "customer ids are masked");
    stats::reset();
    let mask = (p.customers - 1) as u64;
    let mut checking = Table::new(v.dense, p.customers);
    let mut savings = Table::new(v.dense, p.customers);
    for c in 0..p.customers as u64 {
        checking.write(c, 1_000 + (c as i64 % 7) * 10);
        savings.write(c, 5_000 + (c as i64 % 13) * 100);
    }

    let mut rng = Rng(0x5A11_BA9C ^ 0x9E3779B97F4A7C15);
    let mut objective: i64 = 0;
    for _ in 0..p.txns {
        let s = rng.next();
        let cust = s & mask;
        let amt = ((s >> 24) & 0xFF) as i64 + 1;
        // The Smallbank mix: balance 15%, deposit-checking 15%,
        // transact-savings 15%, amalgamate 10%, write-check 25%,
        // send-payment 20%.
        let op = (s >> 56) % 100;
        if op < 15 {
            // balance: read both accounts.
            let total = checking.read(cust) + savings.read(cust);
            stats::charge(1.0);
            objective = objective.wrapping_add(total & 0xFFF);
        } else if op < 30 {
            // deposit_checking: checking[c] += amt.
            objective = objective.wrapping_add(checking.rmw(v.fused, cust, |x| x + amt) & 1);
        } else if op < 45 {
            // transact_savings: savings[c] += amt.
            objective = objective.wrapping_add(savings.rmw(v.fused, cust, |x| x + amt) & 1);
        } else if op < 55 {
            // amalgamate: move savings into checking.
            let sv = savings.read(cust);
            savings.write(cust, 0);
            objective = objective.wrapping_add(checking.rmw(v.fused, cust, |x| x + sv) & 1);
        } else if op < 80 {
            // write_check: debit checking, with an overdraft penalty.
            let bal = checking.read(cust);
            stats::charge(1.0);
            let debit = if bal < amt { amt + 1 } else { amt };
            objective = objective.wrapping_add(checking.rmw(v.fused, cust, |x| x - debit) & 1);
        } else {
            // send_payment: debit one customer, credit another.
            let dst = (s >> 13) & mask;
            checking.rmw(v.fused, cust, |x| x - amt);
            objective = objective.wrapping_add(checking.rmw(v.fused, dst, |x| x + amt) & 1);
        }
    }

    // Final audit: sum every balance (reads the whole key space).
    for c in 0..p.customers as u64 {
        objective = objective
            .wrapping_add(checking.read(c))
            .wrapping_add(savings.read(c));
    }
    SmallbankOutcome {
        objective,
        ledger: stats::snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SmallbankParams {
        SmallbankParams {
            customers: 256,
            txns: 6_000,
        }
    }

    #[test]
    fn deterministic_objective() {
        let a = run_smallbank(&small(), SmallbankVariant::default());
        let b = run_smallbank(&small(), SmallbankVariant::default());
        assert_eq!(a.objective, b.objective);
        assert_ne!(a.objective, 0);
    }

    /// Fusion and representation change cost and layout, not semantics.
    #[test]
    fn variants_preserve_objective() {
        let base = run_smallbank(&small(), SmallbankVariant::default());
        for v in [
            SmallbankVariant {
                fused: true,
                ..Default::default()
            },
            SmallbankVariant {
                dense: true,
                ..Default::default()
            },
            SmallbankVariant::all(),
        ] {
            let out = run_smallbank(&small(), v);
            assert_eq!(out.objective, base.objective, "{v:?}");
        }
    }

    /// The fusion payoff: one storage pass per update beats two.
    #[test]
    fn fusion_reduces_cost() {
        let p = small();
        for dense in [false, true] {
            let unfused = run_smallbank(
                &p,
                SmallbankVariant {
                    fused: false,
                    dense,
                },
            );
            let fused = run_smallbank(&p, SmallbankVariant { fused: true, dense });
            assert!(
                fused.ledger.cost < unfused.ledger.cost,
                "fused {} must beat unfused {} (dense={dense})",
                fused.ledger.cost,
                unfused.ledger.cost
            );
        }
    }

    /// The adaptive-representation payoff: the bounded key space makes
    /// the direct-indexed layout cheaper per op *and* smaller than the
    /// hashtable at full population.
    #[test]
    fn dense_reduces_cost_and_rss() {
        let p = small();
        let hash = run_smallbank(&p, SmallbankVariant::default());
        let dense = run_smallbank(
            &p,
            SmallbankVariant {
                dense: true,
                ..Default::default()
            },
        );
        assert!(
            dense.ledger.cost < 0.5 * hash.ledger.cost,
            "dense cost {} must halve hashtable cost {}",
            dense.ledger.cost,
            hash.ledger.cost
        );
        assert!(
            dense.ledger.peak_bytes < hash.ledger.peak_bytes,
            "dense peak {}B must undercut hashtable peak {}B",
            dense.ledger.peak_bytes,
            hash.ledger.peak_bytes
        );
    }

    /// Both optimizations compose.
    #[test]
    fn all_is_cheapest() {
        let p = small();
        let base = run_smallbank(&p, SmallbankVariant::default());
        let all = run_smallbank(&p, SmallbankVariant::all());
        assert_eq!(all.objective, base.objective);
        assert!(all.ledger.cost < 0.5 * base.ledger.cost);
    }
}
