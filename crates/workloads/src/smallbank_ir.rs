//! The Smallbank kernel at the IR level (DESIGN §16): an assoc-heavy
//! read-modify-write transaction loop over two account tables keyed by a
//! masked (provably bounded) customer id.
//!
//! This is the automatic-optimization subject matching the
//! [`crate::smallbank`] runtime twin: every balance update is written as
//! the naive `read → bin → mut_write` chain so the fusion pass can
//! rewrite it into a single-pass `RMW`, and every key is an `& 0x3FF`
//! mask of a hash so the representation analysis can prove the key space
//! bounded and lower both tables to the dense direct-indexed layout.
//! The duplicate `size` queries at the exit are fodder for the fusion
//! pass's redundant-query folding.

use memoir_ir::{BinOp, CmpOp, Form, Module, ModuleBuilder, Type};

/// Number of customers (the masked key-space bound).
pub const CUSTOMERS: u64 = 1_024;

/// Builds the Smallbank kernel: `bank(txns: index) -> i64` returns a
/// deterministic checksum over the balances the transaction mix observed.
pub fn build_smallbank_ir() -> Module {
    let mut mb = ModuleBuilder::new("smallbank");
    mb.func("bank", Form::Mut, |b| {
        let idxt = b.ty(Type::Index);
        let i64t = b.ty(Type::I64);
        let txns = b.param("txns", idxt);
        let checking = b.new_assoc(i64t, i64t);
        let savings = b.new_assoc(i64t, i64t);
        let mask = b.i64(CUSTOMERS as i64 - 1);
        let zero_i = b.index(0);
        let one_i = b.index(1);
        let zero64 = b.i64(0);
        let seed0 = b.i64(0x1CEB00DA);
        let c_cust = b.index(CUSTOMERS);
        let c_init_chk = b.i64(1_000);
        let c_init_sav = b.i64(5_000);

        let ih = b.block("init_header");
        let ib = b.block("init_body");
        let mh = b.block("txn_header");
        let tb = b.block("txn_body");
        let exit = b.block("exit");
        let entry = b.func.entry;
        b.jump(ih);

        // Open every account: keys are masked so the bound is provable at
        // every write site, not just the transaction loop.
        b.switch_to(ih);
        let j = b.phi_placeholder(idxt);
        b.add_phi_incoming(j, entry, zero_i);
        let init_done = b.cmp(CmpOp::Ge, j, c_cust);
        b.branch(init_done, mh, ib);

        b.switch_to(ib);
        let jc = b.cast(Type::I64, j);
        let keyj = b.bin(BinOp::And, jc, mask);
        b.mut_write(checking, keyj, c_init_chk);
        b.mut_write(savings, keyj, c_init_sav);
        let j2 = b.add(j, one_i);
        b.add_phi_incoming(j, ib, j2);
        b.jump(ih);

        // The transaction loop.
        b.switch_to(mh);
        let i = b.phi_placeholder(idxt);
        let seed = b.phi_placeholder(i64t);
        let obj = b.phi_placeholder(i64t);
        b.add_phi_incoming(i, ih, zero_i);
        b.add_phi_incoming(seed, ih, seed0);
        b.add_phi_incoming(obj, ih, zero64);
        let done = b.cmp(CmpOp::Ge, i, txns);
        b.branch(done, exit, tb);

        b.switch_to(tb);
        // xorshift.
        let c13 = b.i64(13);
        let c7 = b.i64(7);
        let c17 = b.i64(17);
        let t1 = b.bin(BinOp::Shl, seed, c13);
        let s1 = b.bin(BinOp::Xor, seed, t1);
        let t2 = b.bin(BinOp::Shr, s1, c7);
        let s2 = b.bin(BinOp::Xor, s1, t2);
        let t3 = b.bin(BinOp::Shl, s2, c17);
        let s3 = b.bin(BinOp::Xor, s2, t3);
        // Customer id and amount.
        let key = b.bin(BinOp::And, s3, mask);
        let c24 = b.i64(24);
        let c255 = b.i64(0xFF);
        let sh = b.bin(BinOp::Shr, s3, c24);
        let amt = b.bin(BinOp::And, sh, c255);
        // deposit_checking: the naive RMW chain fusion turns into one
        // storage pass.
        let v = b.read(checking, key);
        let v2 = b.bin(BinOp::Add, v, amt);
        b.mut_write(checking, key, v2);
        // transact_savings on the same customer.
        let w = b.read(savings, key);
        let w2 = b.bin(BinOp::Sub, w, amt);
        b.mut_write(savings, key, w2);
        // send_payment leg to a second (also masked) customer.
        let c13b = b.i64(13);
        let sh2 = b.bin(BinOp::Shr, s3, c13b);
        let key2 = b.bin(BinOp::And, sh2, mask);
        let one64 = b.i64(1);
        let u = b.read(checking, key2);
        let u2 = b.bin(BinOp::Add, u, one64);
        b.mut_write(checking, key2, u2);
        // Observe low bits of the updated balances.
        let b1 = b.bin(BinOp::And, v2, one64);
        let b2 = b.bin(BinOp::And, w2, one64);
        let acc1 = b.add(obj, b1);
        let acc2 = b.add(acc1, b2);
        let i2 = b.add(i, one_i);
        b.add_phi_incoming(i, tb, i2);
        b.add_phi_incoming(seed, tb, s3);
        b.add_phi_incoming(obj, tb, acc2);
        b.jump(mh);

        b.switch_to(exit);
        // Redundant queries for the fusion pass's folding to collapse.
        let sz1 = b.size(checking);
        let sz2 = b.size(checking);
        let sc1 = b.cast(Type::I64, sz1);
        let sc2 = b.cast(Type::I64, sz2);
        let szsum = b.add(sc1, sc2);
        let total = b.add(obj, szsum);
        b.returns(&[i64t]);
        b.ret(vec![total]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("bank");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_analysis::choose_reprs;
    use memoir_interp::{Interp, Value};
    use memoir_ir::Repr;

    fn run(m: &Module, n: i64) -> i64 {
        let mut i = Interp::new(m).with_fuel(200_000_000);
        i.run_by_name("bank", vec![Value::Int(Type::Index, n)])
            .unwrap()[0]
            .as_int()
            .unwrap()
    }

    #[test]
    fn deterministic_and_nontrivial() {
        let m = build_smallbank_ir();
        memoir_ir::verifier::assert_valid(&m);
        let a = run(&m, 2_000);
        assert_eq!(a, run(&m, 2_000));
        // 2 × CUSTOMERS from the size queries, plus observed balance bits.
        assert!(a >= 2 * CUSTOMERS as i64, "checksum too small: {a}");
    }

    /// The O3 pipeline (which includes fusion) preserves the checksum.
    #[test]
    fn pipeline_o3_preserves_semantics() {
        let m0 = build_smallbank_ir();
        let mut m = m0.clone();
        memoir_opt::compile(
            &mut m,
            memoir_opt::OptLevel::O3(memoir_opt::OptConfig::all()),
        )
        .unwrap();
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(run(&m0, 1_500), run(&m, 1_500));
    }

    /// The masked keys make both tables dense-selectable.
    #[test]
    fn repr_analysis_selects_dense_for_both_tables() {
        let m = build_smallbank_ir();
        let choices = choose_reprs(&m);
        let dense: Vec<_> = choices
            .values()
            .filter(|r| matches!(r, Repr::Dense { cap } if *cap == CUSTOMERS))
            .collect();
        assert_eq!(
            dense.len(),
            2,
            "both account tables must select Dense{{cap: {CUSTOMERS}}}: {choices:?}"
        );
    }
}
