//! The Fig. 1 workload suite: eleven SPECINT-2017-shaped programs whose heap
//! traffic is classified by the runtime ledger (bytes allocated / read /
//! written per collection class). Each workload is a deterministic
//! miniature of the benchmark's dominant data-structure behaviour, sized
//! to run in milliseconds; the *proportions* of the traffic are the
//! experiment (DESIGN.md E1).

use crate::{deepsjeng, mcf, smallbank};
use memoir_runtime::{stats, Assoc, CollectionClass, ObjectHeap, RawBuf, Seq};

/// One Fig. 1 column: workload name plus its ledger snapshot.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Benchmark-style name.
    pub name: &'static str,
    /// The ledger after the run.
    pub ledger: stats::Ledger,
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }
}

/// Runs the full suite, returning one result per workload.
pub fn run_suite() -> Vec<SuiteResult> {
    let mut out = Vec::new();
    let mut run = |name: &'static str, f: &mut dyn FnMut()| {
        stats::reset();
        f();
        out.push(SuiteResult {
            name,
            ledger: stats::snapshot(),
        });
    };

    // perlbench: string-hash interpreter — associative-heavy with
    // sequential scratch.
    run("perlbench", &mut || {
        let mut rng = Rng(11);
        let mut symtab: Assoc<u64, i64> = Assoc::new();
        let mut stack: Seq<i64> = Seq::new();
        for i in 0..40_000u64 {
            let k = rng.next() % 8_192;
            symtab.write(k, i as i64);
            if symtab.contains(&(k ^ 1)) {
                stack.push(*symtab.read(&(k ^ 1)));
            }
            if stack.size() > 128 {
                let n = stack.size();
                stack.remove_range(0, n - 64);
            }
        }
    });

    // gcc: graph-shaped IR plus object nodes and worklists.
    run("gcc", &mut || {
        let mut rng = Rng(22);
        let mut nodes: ObjectHeap<(u32, u32, i64)> = ObjectHeap::new(40);
        let mut edges: Seq<(u32, u32)> = Seq::with_class(CollectionClass::Graph);
        let mut refs = Vec::new();
        for i in 0..20_000u64 {
            refs.push(nodes.alloc(((i >> 3) as u32, (i & 7) as u32, 0)));
            if i > 0 {
                edges.push((i as u32, (rng.next() % i) as u32));
            }
        }
        for k in 0..edges.size() {
            let (a, b) = *edges.read(k);
            let r = refs[(a as usize).min(refs.len() - 1)];
            nodes.write(r, |n| n.2 += b as i64);
        }
    });

    // mcf: the pricing twin.
    run("mcf", &mut || {
        let p = mcf::McfParams {
            initial_arcs: 8_000,
            window_b: 300,
            append_k: 3_000,
            rounds: 3,
        };
        let _ = mcf::run_mcf(&p, mcf::McfVariant::default());
        // run_mcf resets the ledger itself; re-run inline for the suite's
        // accounting by recomputing once more below.
    });
    // (run_mcf resets the ledger; the entry above recorded the final
    // snapshot because run_mcf leaves its traffic in place.)

    // omnetpp: discrete-event simulation — event objects in a sorted
    // sequence (calendar queue).
    run("omnetpp", &mut || {
        let mut rng = Rng(33);
        let mut events: Seq<(i64, u32)> = Seq::new();
        let mut heap: ObjectHeap<(i64, u32)> = ObjectHeap::new(48);
        for _ in 0..15_000 {
            let t = (rng.next() % 100_000) as i64;
            let r = heap.alloc((t, 0));
            let _ = r;
            // insertion sort into the calendar (bounded scan).
            let mut pos = events.size();
            let mut scanned = 0;
            while pos > 0 && scanned < 32 {
                if events.read(pos - 1).0 <= t {
                    break;
                }
                pos -= 1;
                scanned += 1;
            }
            events.insert(pos, (t, 0));
            if events.size() > 4_096 {
                events.remove(0);
            }
        }
    });

    // xalancbmk: XML tree walking.
    run("xalancbmk", &mut || {
        let mut rng = Rng(44);
        let mut tree: Seq<(u32, u32)> = Seq::with_class(CollectionClass::Tree);
        let mut text: Seq<u8> = Seq::new();
        tree.push((0, 0));
        for i in 1..30_000u32 {
            let parent = (rng.next() % i as u64) as u32;
            tree.push((parent, i));
            if i % 3 == 0 {
                text.push((rng.next() & 0x7F) as u8);
            }
        }
        // Walk: accumulate depths.
        let mut acc = 0u64;
        for i in 0..tree.size() {
            acc = acc.wrapping_add(tree.read(i).0 as u64);
        }
        std::hint::black_box(acc);
    });

    // x264: frame buffers — unstructured pixel planes + sequential MB rows.
    run("x264", &mut || {
        let mut frames = Vec::new();
        for f in 0..6 {
            let mut buf = RawBuf::new(160 * 120);
            for p in (0..buf.len()).step_by(7) {
                buf.write(p, (p as u8).wrapping_mul(f + 1));
            }
            frames.push(buf);
        }
        let mut mbs: Seq<i64> = Seq::new();
        for f in 1..frames.len() {
            let (a, b) = (&frames[f - 1], &frames[f]);
            let mut sad = 0i64;
            for p in (0..a.len()).step_by(13) {
                sad += (a.read(p) as i64 - b.read(p) as i64).abs();
            }
            mbs.push(sad);
        }
    });

    // deepsjeng: the transposition-table twin.
    run("deepsjeng", &mut || {
        let p = deepsjeng::DeepsjengParams {
            table_entries: 8_000,
            nodes: 60_000,
        };
        let _ = deepsjeng::run_deepsjeng(&p, deepsjeng::DeepsjengVariant::default());
    });

    // leela: MCTS tree search.
    run("leela", &mut || {
        let mut rng = Rng(55);
        let mut nodes: ObjectHeap<(u32, u32, f64)> = ObjectHeap::new(56);
        let mut children: Seq<(u32, u32)> = Seq::with_class(CollectionClass::Tree);
        let mut refs = vec![nodes.alloc((0, 0, 0.0))];
        for _ in 0..25_000 {
            let pick = (rng.next() % refs.len() as u64) as usize;
            let parent = refs[pick];
            let visits = nodes.read(parent, |n| n.1);
            if visits < 8 {
                let r = nodes.alloc((pick as u32, 0, 0.0));
                refs.push(r);
                children.push((pick as u32, refs.len() as u32 - 1));
            }
            nodes.write(parent, |n| {
                n.1 += 1;
                n.2 += 0.5;
            });
        }
    });

    // exchange2: dense array puzzles — pure sequential.
    run("exchange2", &mut || {
        let mut grid: Seq<i64> = Seq::with_len(81, |i| (i % 9) as i64);
        let mut rng = Rng(66);
        for _ in 0..200_000 {
            let a = (rng.next() % 81) as usize;
            let b = (rng.next() % 81) as usize;
            grid.swap(a, b);
            let v = *grid.read(a);
            grid.write(b, v);
        }
    });

    // smallbank: the assoc-heavy read-modify-write transaction twin
    // (DESIGN §16) — the fusion/adaptive-representation subject.
    run("smallbank", &mut || {
        let p = smallbank::SmallbankParams {
            customers: 512,
            txns: 12_000,
        };
        let _ = smallbank::run_smallbank(&p, smallbank::SmallbankVariant::default());
    });

    // xz: LZMA-ish — unstructured buffers with an associative match table.
    run("xz", &mut || {
        let mut rng = Rng(77);
        let mut input = RawBuf::new(120_000);
        for i in 0..input.len() {
            input.write(i, (rng.next() & 0xFF) as u8);
        }
        let mut matches: Assoc<u32, u32> = Assoc::new();
        for i in 0..input.len().saturating_sub(3) {
            let key = (input.read(i) as u32) << 16
                | (input.read(i + 1) as u32) << 8
                | input.read(i + 2) as u32;
            matches.write(key & 0xFFFF, i as u32);
        }
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_classifies() {
        let results = run_suite();
        assert_eq!(results.len(), 11);
        for r in &results {
            assert!(
                r.ledger.total_allocated() > 0,
                "{} allocated nothing",
                r.name
            );
        }
    }

    /// The paper's §III headline: the majority of heap bytes have a
    /// higher-level structure (sequential/associative/object) across the
    /// suite.
    #[test]
    fn majority_of_bytes_are_structured() {
        let results = run_suite();
        let mut structured = 0.0;
        let mut total = 0.0;
        for r in &results {
            for c in CollectionClass::ALL {
                let b = r.ledger.class(c).allocated as f64;
                total += b;
                if c.representable() {
                    structured += b;
                }
            }
        }
        assert!(
            structured / total > 0.5,
            "structured share {:.2} must exceed half",
            structured / total
        );
    }

    /// Class signatures per workload match their design.
    #[test]
    fn class_signatures() {
        let results = run_suite();
        let get = |name: &str| results.iter().find(|r| r.name == name).unwrap();
        use CollectionClass as C;
        assert!(get("xz").ledger.class(C::Unstructured).allocated > 0);
        assert!(get("x264").ledger.class(C::Unstructured).allocated > 0);
        assert!(get("leela").ledger.class(C::Tree).allocated > 0);
        assert!(get("xalancbmk").ledger.class(C::Tree).allocated > 0);
        assert!(get("gcc").ledger.class(C::Graph).allocated > 0);
        assert!(get("perlbench").ledger.class(C::Associative).allocated > 0);
        assert!(get("smallbank").ledger.class(C::Associative).allocated > 0);
        assert!(get("mcf").ledger.class(C::Object).allocated > 0);
        assert!(get("exchange2").ledger.class(C::Sequential).allocated > 0);
    }
}
