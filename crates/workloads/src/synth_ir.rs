//! A SPEC-shaped synthetic IR generator for the pass-analysis figures
//! (§VII-D). The paper instruments LLVM passes over whole-program SPEC
//! bitcode; our hand-written kernels are far smaller, so this module
//! generates modules with the *op mix* of lowered C/C++ — cross-block
//! scalar chains (sink candidates), loads separated from stores by
//! may-write operations (blocked sinks, failed load folds), constant
//! stores (occasional load-fold successes), hash-table calls (opaque
//! barriers), and object field traffic.

use memoir_ir::{BinOp, CmpOp, Field, Form, Module, ModuleBuilder, Type};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds a synthetic module with `nfuncs` SPEC-shaped functions.
pub fn build_synth_ir(nfuncs: usize, seed: u64) -> Module {
    let mut rng = Rng(seed | 1);
    let mut mb = ModuleBuilder::new("synth");
    let i64t = mb.module.types.intern(Type::I64);
    let obj = mb
        .module
        .types
        .define_object(
            "rec",
            vec![
                Field {
                    name: "a".into(),
                    ty: i64t,
                },
                Field {
                    name: "b".into(),
                    ty: i64t,
                },
            ],
        )
        .unwrap();

    for k in 0..nfuncs {
        let c1 = rng.below(100) as i64;
        let c2 = rng.below(50) as i64 + 1;
        let use_assoc = rng.below(3) == 0;
        let blocked_read = rng.below(2) == 0;
        let fold_pair = rng.below(2) == 0;
        mb.func(&format!("work_{k}"), Form::Mut, |b| {
            let seqt = b.types.seq_of(i64t);
            let s = b.param_ref("s", seqt);
            let x = b.param("x", i64t);

            // Entry: reads and scalar chains. `u` is single-use in one arm
            // (a sink candidate); `v` is a read separated from its use by
            // a store (a may-write barrier after lowering).
            let i0 = b.index(0);
            let i1 = b.index(1);
            let i2 = b.index(2);
            let i3 = b.index(3);
            let r0 = b.read(s, i0);
            let r1 = b.read(s, i1);
            let c1v = b.i64(c1);
            let c_half = b.i64(c2 / 2);
            // Constant arithmetic the folder resolves (scalar successes
            // after lowering).
            let kk = b.add(c1v, c_half);
            let kk2 = b.mul(kk, c_half);
            let t0 = b.mul(x, kk);
            let t = b.add(t0, kk2);
            let u = b.add(r0, r1);
            let v = if blocked_read {
                Some(b.read(s, i2))
            } else {
                None
            };
            // A store the sinker must respect.
            let stored = b.i64(c2);
            b.mut_write(s, i3, stored);
            if fold_pair {
                // Read back the just-stored constant: in-block forwarding
                // folds this at the MEMOIR level; after lowering the
                // distinct gep chains defeat the tracker (load fail).
                let back = b.read(s, i3);
                let _dead = b.add(back, c1v);
            }
            if use_assoc {
                let a = b.new_assoc(i64t, i64t);
                let key = b.i64(c1 % 7);
                b.mut_write(a, key, t);
                let _probe = b.has(a, key);
            }
            // A local stack-eligible scratch sequence: after lowering
            // (alloca) + mem2reg + GVN, the constant store feeds the read
            // back — the rare load-fold *success* of Fig. 12.
            let scr_n = b.index(4);
            let scratch = b.new_seq(i64t, scr_n);
            let two_i = b.index(2);
            let cst = b.i64(c2 + 1);
            b.mut_write(scratch, two_i, cst);
            let back2 = b.read(scratch, two_i);
            let _use = b.add(back2, c1v);
            // Object traffic.
            let o = b.new_obj(obj);
            b.field_write(o, obj, 0, t);
            let fa = b.field_read(o, obj, 0);

            let c2v = b.i64(c2);
            let cond = b.cmp(CmpOp::Gt, x, c2v);
            let arm_a = b.block("arm_a");
            let arm_b = b.block("arm_b");
            let join = b.block("join");
            b.branch(cond, arm_a, arm_b);

            b.switch_to(arm_a);
            let ya = b.add(u, t); // consumes the sink candidate
            let ya2 = b.bin(BinOp::Xor, ya, fa);
            b.jump(join);

            b.switch_to(arm_b);
            let yb = match v {
                Some(v) => b.mul(v, c2v), // consumes the blocked read
                None => b.mul(x, c2v),
            };
            b.jump(join);

            b.switch_to(join);
            let y = b.phi(i64t, vec![(arm_a, ya2), (arm_b, yb)]);
            b.returns(&[i64t]);
            b.ret(vec![y]);
        });
    }
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_verifies_and_lowers() {
        let m = build_synth_ir(20, 42);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(m.funcs.len(), 20);
        let lowered = memoir_lower::lower_module(&m).unwrap();
        assert!(lowered.inst_count() > 400);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = memoir_ir::printer::print_module(&build_synth_ir(5, 7));
        let b = memoir_ir::printer::print_module(&build_synth_ir(5, 7));
        assert_eq!(a, b);
    }

    /// The generated mix produces meaningful pass-analysis counters after
    /// lowering (the Figs. 10–12 requirement).
    #[test]
    fn lowered_mix_exercises_pass_counters() {
        let m = build_synth_ir(40, 1);
        let lowered = memoir_lower::lower_module(&m).unwrap();
        let mut g = lowered.clone();
        let gvn = lir::gvn(&mut g);
        assert!(gvn.memory_fraction() > 0.25, "{}", gvn.memory_fraction());

        let mut s = lowered.clone();
        let sink = lir::sink(&mut s);
        assert!(sink.attempts() > 20, "{sink:?}");
        assert!(
            sink.blocked_may_write + sink.blocked_may_reference > 0,
            "{sink:?}"
        );
        assert!(sink.success > 0, "{sink:?}");

        let mut c = lowered.clone();
        let cf = lir::constfold(&mut c);
        assert!(cf.load_fail > 0, "{cf:?}");
        assert!(cf.scalar_success > 0, "{cf:?}");
    }
}
