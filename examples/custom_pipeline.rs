//! Drive the pass manager with a hand-written pipeline spec.
//!
//! ```sh
//! cargo run --example custom_pipeline
//! ```

use memoir::interp::{Interp, Value};
use memoir::ir::{Form, ModuleBuilder, Type};
use memoir::opt::{compile_spec, default_spec, OptConfig, OptLevel};
use memoir::passman::PipelineSpec;

fn main() {
    // The default O3 pipeline is itself just a spec string.
    println!(
        "default O3 pipeline:\n  {}\n",
        default_spec(OptLevel::O3(OptConfig::all()))
    );

    // Build a small mut-form program…
    let mut mb = ModuleBuilder::new("demo");
    mb.func("main", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let n = b.index(4);
        let s = b.new_seq(i64t, n);
        for k in 0..4 {
            let ik = b.index(k);
            let vk = b.i64((k * k) as i64);
            b.mut_write(s, ik, vk);
        }
        let three = b.index(3);
        let r = b.read(s, three);
        b.returns(&[i64t]);
        b.ret(vec![r]);
    });
    let mut module = mb.finish();

    // …and run a hand-written pipeline over it.
    let spec: PipelineSpec = "ssa-construct,constprop,dee,fixpoint(simplify,sink,dce),ssa-destruct"
        .parse()
        .expect("spec parses");
    let report = compile_spec(&mut module, &spec).expect("pipeline runs");
    println!("{}", report.run.render_table());

    let out = Interp::new(&module).run_by_name("main", vec![]).unwrap();
    assert_eq!(out, vec![Value::Int(Type::I64, 9)]);
    println!("result: {out:?}");

    // Mistakes are rejected before anything runs.
    let bad: PipelineSpec = "ssa-construct,licm".parse().unwrap();
    let err = compile_spec(&mut module.clone(), &bad).unwrap_err();
    println!("\nunknown pass: {err}");
    let err = "fixpoint(a,fixpoint(b))"
        .parse::<PipelineSpec>()
        .unwrap_err();
    println!("nested fixpoint: {err}");
}
