//! Dead Element Elimination on the mcf kernel (paper Listings 2–4):
//! automatic live-range-driven specialization of a recursive quicksort.
//!
//! ```sh
//! cargo run --release --example dee_qsort
//! ```

use memoir::interp::{Interp, Value};
use memoir::ir::{printer, Type};
use memoir::opt::{construct_ssa, dee_specialize_calls_with, destruct_ssa, DeeOptions};

fn main() {
    let baseline = memoir::workloads::mcf_ir::build_mcf_ir();

    // Construct SSA and let DEE discover that master only observes
    // [0 : B) of the sorted basket.
    let mut optimized = memoir::workloads::mcf_ir::build_mcf_ir();
    construct_ssa(&mut optimized).unwrap();
    let stats = dee_specialize_calls_with(&mut optimized, DeeOptions::exact());
    println!("DEE: {stats:?}");
    assert!(stats.functions_specialized >= 1);
    assert!(stats.recursive_calls_pruned >= 1);

    // Show the specialized kernel (the Listing 4 analogue with the
    // pruning-only, exact configuration).
    let spec = optimized.func_by_name("qsort__dee").unwrap();
    println!("––– specialized qsort (SSA) –––");
    println!(
        "{}",
        printer::print_function(&optimized.funcs[spec], &optimized.types, &optimized)
    );
    destruct_ssa(&mut optimized);
    memoir::ir::verifier::assert_valid(&optimized);

    // Sweep basket sizes: the window B stays fixed, so the baseline sorts
    // ever more dead elements while the specialized kernel's work stays
    // near-linear.
    println!(
        "{:>8} {:>4} {:>13} {:>13} {:>9}",
        "n", "B", "base cost", "DEE cost", "speedup"
    );
    for scale in [1i64, 2, 4, 8] {
        let (n0, k, b, rounds) = (800 * scale, 400 * scale, 16, 3);
        let run = |m: &memoir::ir::Module| {
            let mut vm = Interp::new(m).with_fuel(4_000_000_000);
            let out = vm
                .run_by_name(
                    "master",
                    vec![
                        Value::Int(Type::Index, n0),
                        Value::Int(Type::Index, b),
                        Value::Int(Type::Index, k),
                        Value::Int(Type::Index, rounds),
                    ],
                )
                .unwrap();
            (out[0].as_int().unwrap(), vm.stats.cost)
        };
        let (ob, cb) = run(&baseline);
        let (od, cd) = run(&optimized);
        assert_eq!(ob, od, "exact mode preserves the objective");
        println!(
            "{:>8} {:>4} {:>13.0} {:>13.0} {:>8.1}%",
            n0 + k,
            b,
            cb,
            cd,
            (1.0 - cd / cb) * 100.0
        );
    }
}
