//! Field elision + dead field elimination end-to-end (paper §V): an
//! object type loses a cold field to an associative array and a dead
//! field outright, shrinking its layout.
//!
//! ```sh
//! cargo run --example field_elision
//! ```

use memoir::interp::Interp;
use memoir::ir::{printer, Callee, Field, Form, ModuleBuilder, Type};

fn main() {
    let mut mb = ModuleBuilder::new("arcs");
    let i64t = mb.module.types.intern(Type::I64);
    let arc_ty = mb
        .module
        .types
        .define_object(
            "arc",
            vec![
                Field {
                    name: "cost".into(),
                    ty: i64t,
                }, // hot
                Field {
                    name: "ident".into(),
                    ty: i64t,
                }, // cold → elided
                Field {
                    name: "scratch".into(),
                    ty: i64t,
                }, // never read → DFE
            ],
        )
        .unwrap();
    let ref_ty = mb.module.types.ref_of(arc_ty);

    // A helper reads the cold field; main works the hot one in a loop.
    let get_ident = mb.func("get_ident", Form::Mut, |b| {
        let o = b.param("o", ref_ty);
        let v = b.field_read(o, arc_ty, 1);
        b.returns(&[i64t]);
        b.ret(vec![v]);
    });
    mb.func("main", Form::Mut, |b| {
        let o = b.new_obj(arc_ty);
        let c = b.i64(7);
        b.field_write(o, arc_ty, 0, c);
        let id = b.i64(12345);
        b.field_write(o, arc_ty, 1, id);
        let junk = b.i64(-1);
        b.field_write(o, arc_ty, 2, junk);
        // Hot loop on cost.
        let idxt = b.ty(Type::Index);
        let n = b.index(100);
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        let zero = b.index(0);
        let one = b.index(1);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi_placeholder(idxt);
        let entry = b.func.entry;
        b.add_phi_incoming(i, entry, zero);
        let done = b.cmp(memoir::ir::CmpOp::Ge, i, n);
        b.branch(done, exit, body);
        b.switch_to(body);
        let cur = b.field_read(o, arc_ty, 0);
        let one64 = b.i64(1);
        let bumped = b.add(cur, one64);
        b.field_write(o, arc_ty, 0, bumped);
        let next = b.add(i, one);
        let bb = b.current_block();
        b.add_phi_incoming(i, bb, next);
        b.jump(header);
        b.switch_to(exit);
        let cost = b.field_read(o, arc_ty, 0);
        let ident = b.call(Callee::Func(get_ident), vec![o], &[i64t])[0];
        let sum = b.add(cost, ident);
        b.returns(&[i64t]);
        b.ret(vec![sum]);
    });
    let mut module = mb.finish();
    module.entry = module.func_by_name("main");

    let before = module.types.object_layout(arc_ty).size;
    let baseline = {
        let mut vm = Interp::new(&module);
        vm.run_by_name("main", vec![]).unwrap()
    };
    println!("arc layout before: {before} bytes");

    // Affinity analysis picks `ident` (accessed away from its siblings).
    let affinity = memoir::analysis::Affinity::compute(&module);
    println!(
        "ident affinity: {:.2} (cost: {:.2})",
        affinity.for_type(arc_ty).unwrap().affinity(1),
        affinity.for_type(arc_ty).unwrap().affinity(0),
    );

    let fe = memoir::opt::field_elision(&mut module, arc_ty, 1).unwrap();
    println!("field elision: {fe:?}");
    let dfe = memoir::opt::dfe(&mut module);
    println!("dead field elimination: {dfe:?}");
    memoir::ir::verifier::assert_valid(&module);

    let after = module.types.object_layout(arc_ty).size;
    println!("arc layout after: {after} bytes");
    assert!(after < before);

    println!("\n––– transformed module –––");
    println!("{}", printer::print_module(&module));

    let mut vm = Interp::new(&module);
    let out = vm.run_by_name("main", vec![]).unwrap();
    assert_eq!(out, baseline, "layout changes preserve semantics");
    println!("result unchanged: {out:?}");
}
