//! Listing 1 end-to-end: MEMOIR propagates a constant through an
//! associative array where the lowered (hash-table-call) form cannot.
//!
//! ```sh
//! cargo run --example map_constprop
//! ```

use memoir::ir::{printer, InstKind};

fn main() {
    // map[0] = 10; map[1] = 11; return map[0];
    let module = memoir::workloads::listing1::build_listing1();
    println!("––– Listing 1 in MUT form –––");
    println!("{}", printer::print_module(&module));

    // MEMOIR path: SSA construction + element-level constant propagation.
    let mut ssa = module.clone();
    memoir::opt::construct_ssa(&mut ssa).unwrap();
    let stats = memoir::opt::constprop(&mut ssa);
    println!("––– after MEMOIR constprop –––");
    println!("{}", printer::print_module(&ssa));
    println!("element reads forwarded: {}", stats.element_reads_forwarded);
    assert_eq!(stats.element_reads_forwarded, 1);

    // The function now returns the constant 10 directly.
    let f = &ssa.funcs[ssa.func_by_name("work").unwrap()];
    for (_, i) in f.inst_ids_in_order() {
        if let InstKind::Ret { values } = &f.insts[i].kind {
            let c = f.value_const(values[0]);
            println!("returned constant: {c:?}");
            assert!(c.is_some(), "MEMOIR folded map[0] to a constant");
        }
    }

    // Lowered path: the map becomes opaque runtime calls; the fold never
    // happens (the paper's point — clang/gcc/icc cannot fold this either).
    let lowered = memoir::lower::lower_module(&module).unwrap();
    let mut lowered = lowered;
    let cf = memoir::lir::constfold(&mut lowered);
    println!("\n––– lowered form –––");
    println!(
        "constfold on the lowered form: scalar={} load_ok={} load_fail={}",
        cf.scalar_success, cf.load_success, cf.load_fail
    );
    assert_eq!(cf.load_success, 0);

    // Both still compute 10 at runtime.
    let mut vm = memoir::lir::LirMachine::new(&lowered);
    let out = vm.run_by_name("work", vec![]).unwrap();
    println!("lowered result: {out:?}");
    assert_eq!(out, vec![10]);
}
