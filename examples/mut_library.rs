//! Using the MUT runtime library directly (paper §VI): value-semantic
//! sequences and associative arrays with the explicit operators of
//! Fig. 5, plus the per-class memory ledger behind Fig. 1.
//!
//! ```sh
//! cargo run --example mut_library
//! ```

use memoir::runtime::{stats, Assoc, CollectionClass, ObjectHeap, Seq};

fn main() {
    stats::reset();

    // Sequences: explicit insert/remove/swap/split, value semantics.
    let mut s: Seq<i64> = Seq::new();
    for i in 0..10 {
        s.push(i * i);
    }
    s.swap(0, 9);
    let tail = s.split(5, 10);
    s.append(tail);
    let snapshot = s.clone(); // a deep copy — mutations don't alias
    s.write(0, -1);
    assert_eq!(*snapshot.read(0), 81);
    println!("sequence: {:?}", s.as_slice());

    // Associative arrays: write/read/contains/keys.
    let mut prices: Assoc<u32, i64> = Assoc::new();
    prices.write(7, 1300);
    prices.write(3, 250);
    prices.write(7, 1250); // redefinition
    assert!(prices.contains(&3));
    println!("keys in insertion order: {:?}", prices.keys().as_slice());

    // Objects: explicit new/delete with modeled layout.
    let mut heap: ObjectHeap<(i64, i64)> = ObjectHeap::new(56);
    let a = heap.alloc((1, 2));
    let b = heap.alloc((3, 4));
    heap.write(a, |o| o.0 += 10);
    let sum = heap.read(a, |o| o.0 + o.1) + heap.read(b, |o| o.0 + o.1);
    heap.delete(b);
    println!("objects: sum={sum}, live={}", heap.live_count());

    // The ledger: per-class byte accounting (the Fig. 1 substrate).
    let ledger = stats::snapshot();
    println!("\nper-class bytes allocated:");
    for class in CollectionClass::ALL {
        let c = ledger.class(class);
        if c.allocated > 0 {
            println!(
                "  {:>12}: {:>6} allocated, {:>5} read, {:>5} written",
                class.label(),
                c.allocated,
                c.read,
                c.written
            );
        }
    }
    println!(
        "current {} B, peak {} B, cost proxy {:.0}",
        ledger.current_bytes, ledger.peak_bytes, ledger.cost
    );
}
