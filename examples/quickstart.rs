//! Quickstart: build a MUT-form program, compile it through the MEMOIR
//! pipeline, inspect the SSA form, and run both forms.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use memoir::interp::{Interp, Value};
use memoir::ir::{printer, Form, ModuleBuilder, Type};
use memoir::opt::{compile, construct_ssa, OptConfig, OptLevel};

fn main() {
    // A small program in MUT form: fill a sequence with squares, sum a
    // prefix.
    let mut mb = ModuleBuilder::new("quickstart");
    mb.func("main", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let n = b.index(8);
        let s = b.new_seq(i64t, n);
        b.name(s, "S");
        for k in 0..8 {
            let ik = b.index(k);
            let vk = b.i64((k * k) as i64);
            b.mut_write(s, ik, vk);
        }
        let i0 = b.index(0);
        let i2 = b.index(2);
        let i5 = b.index(5);
        let a = b.read(s, i0);
        let c = b.read(s, i2);
        let d = b.read(s, i5);
        let ac = b.add(a, c);
        let sum = b.add(ac, d);
        b.returns(&[i64t]);
        b.ret(vec![sum]);
    });
    let module = mb.finish();

    println!("––– MUT form –––");
    println!("{}", printer::print_module(&module));

    // Show the SSA form the compiler works on.
    let mut ssa = module.clone();
    construct_ssa(&mut ssa).unwrap();
    println!("––– MEMOIR SSA form –––");
    println!("{}", printer::print_module(&ssa));

    // Full pipeline: construct → optimize → destruct.
    let mut optimized = module.clone();
    let report = compile(&mut optimized, OptLevel::O3(OptConfig::all())).unwrap();
    println!("––– pipeline –––");
    for (pass, t) in &report.pass_times {
        println!("{pass:>16}: {:?}", t);
    }
    println!(
        "spurious copies from destruction: {}",
        report.destruct_copies
    );

    // Run the original and the optimized program: same answer.
    let run = |m: &memoir::ir::Module| {
        let mut vm = Interp::new(m);
        let out = vm.run_by_name("main", vec![]).unwrap();
        (out[0].clone(), vm.stats.insts)
    };
    let (r0, i0) = run(&module);
    let (r1, i1) = run(&optimized);
    println!("\noriginal : {r0:?} in {i0} interpreted instructions");
    println!("optimized: {r1:?} in {i1} interpreted instructions");
    assert_eq!(r0, r1);
    assert_eq!(r0, Value::Int(Type::I64, 4 + 25)); // 0² + 2² + 5²
}
