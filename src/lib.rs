//! # memoir
//!
//! A from-scratch Rust implementation of **MEMOIR** — *"Representing Data
//! Collections in an SSA Form"* (CGO 2024) — a language-agnostic SSA form
//! for sequential and associative data collections, objects, and their
//! fields, together with the analyses, transformations, lowering, and
//! evaluation harness the paper describes.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`ir`] — the MEMOIR IR: types, instructions, builder, printer,
//!   parser, verifier;
//! * [`analysis`] — dominance, def-use, liveness, expression trees, range
//!   lattices, live range analysis (Table I + Alg. 1), escape, affinity,
//!   purity;
//! * [`opt`] — SSA construction/destruction (Fig. 5, Alg. 3), dead
//!   element elimination (Alg. 2), dead field elimination, field elision,
//!   redundant indirection elimination, key folding, and the supporting
//!   scalar passes, assembled into the Fig. 4 pipeline;
//! * [`interp`] — an interpreter with UB-trapping semantics, copy
//!   accounting, and a deterministic cost model;
//! * [`runtime`] — the MUT library as a Rust API with a per-class memory
//!   ledger;
//! * [`lower`] / [`lir`] — collection lowering into a low-level IR with
//!   the instrumented GVN/Sink/ConstantFold passes of §VII-D;
//! * [`symexec`] — bounded symbolic path enumeration over both IRs with
//!   an in-tree solver, backing prove-then-probe translation validation;
//! * [`workloads`] — the evaluation subjects (mcf, deepsjeng, opt, the
//!   Fig. 1 suite, Listing 1).
//!
//! ## Quickstart
//!
//! Build a mut-form function with the MUT-style builder, compile it
//! through the MEMOIR pipeline, and run it:
//!
//! ```
//! use memoir::ir::{Form, ModuleBuilder, Type};
//! use memoir::interp::{Interp, Value};
//! use memoir::opt::{compile, OptConfig, OptLevel};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! mb.func("main", Form::Mut, |b| {
//!     let i64t = b.ty(Type::I64);
//!     let n = b.index(4);
//!     let s = b.new_seq(i64t, n);
//!     for k in 0..4 {
//!         let ik = b.index(k);
//!         let vk = b.i64((k * k) as i64);
//!         b.mut_write(s, ik, vk);
//!     }
//!     let three = b.index(3);
//!     let r = b.read(s, three);
//!     b.returns(&[i64t]);
//!     b.ret(vec![r]);
//! });
//! let mut module = mb.finish();
//!
//! let report = compile(&mut module, OptLevel::O3(OptConfig::all())).unwrap();
//! assert_eq!(report.destruct_copies, 0, "no spurious copies");
//!
//! let mut vm = Interp::new(&module);
//! let out = vm.run_by_name("main", vec![]).unwrap();
//! assert_eq!(out, vec![Value::Int(Type::I64, 9)]);
//! ```

#![warn(missing_docs)]

pub use lir;
pub use memoir_analysis as analysis;
pub use memoir_interp as interp;
pub use memoir_ir as ir;
pub use memoir_lower as lower;
pub use memoir_opt as opt;
pub use memoir_runtime as runtime;
pub use passman;
pub use reduce;
pub use symexec;
pub use workloads;
