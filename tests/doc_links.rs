//! Markdown link-and-anchor checker over the repository's hand-written
//! documentation (`README.md`, `DESIGN.md`, everything under `docs/`).
//! Every intra-repo link must point at a file that exists, and every
//! `#fragment` must match a heading anchor (GitHub slug rules) in the
//! target document — so renames and section edits that would strand a
//! reader fail CI instead of rotting silently.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The documents whose outgoing links are checked. Link *targets* may be
/// any file in the repository.
fn documents() -> Vec<PathBuf> {
    let root = repo_root();
    let mut docs = vec![root.join("README.md"), root.join("DESIGN.md")];
    let dir = root.join("docs");
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("docs/ directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    docs.extend(entries);
    docs
}

/// GitHub-style heading slug: lowercase, markdown markers stripped,
/// non-alphanumeric characters removed, spaces collapsed to hyphens.
fn slugify(heading: &str) -> String {
    // Drop emphasis/code markers and reduce `[text](target)` to `text`.
    let mut text = String::new();
    let mut chars = heading.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '`' | '*' | '[' => {}
            ']' => {
                if chars.peek() == Some(&'(') {
                    for t in chars.by_ref() {
                        if t == ')' {
                            break;
                        }
                    }
                }
            }
            _ => text.push(c),
        }
    }
    let mut slug = String::new();
    for c in text.trim().chars() {
        if c.is_alphanumeric() {
            slug.extend(c.to_lowercase());
        } else if c == ' ' || c == '-' {
            slug.push('-');
        }
        // Everything else (punctuation, `§`, `.`) is dropped.
    }
    slug
}

/// All anchors a document exposes, with GitHub's `-1`, `-2` suffixes on
/// duplicate headings.
fn anchors(markdown: &str) -> Vec<String> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let hashes = trimmed.chars().take_while(|&c| c == '#').count();
        if (1..=6).contains(&hashes) && trimmed[hashes..].starts_with(' ') {
            let base = slugify(&trimmed[hashes + 1..]);
            let n = seen.entry(base.clone()).or_insert(0);
            out.push(if *n == 0 { base } else { format!("{base}-{n}") });
            *n += 1;
        }
    }
    out
}

/// Extracts `(line_number, target)` for every inline `[text](target)`
/// link outside fenced code blocks and inline code spans.
fn links(markdown: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in markdown.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Strip inline code spans so `[i](j)`-shaped code is not a link.
        let stripped: String = line
            .split('`')
            .enumerate()
            .map(|(i, seg)| if i % 2 == 0 { seg } else { "" })
            .collect::<Vec<_>>()
            .join("");
        let bytes = stripped.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                let mut j = i + 2;
                let mut depth = 1;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'(' => depth += 1,
                        b')' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth == 0 {
                    out.push((lineno + 1, stripped[i + 2..j - 1].to_string()));
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }
    out
}

#[test]
fn doc_links_resolve() {
    let root = repo_root();
    let mut anchor_cache: HashMap<PathBuf, Vec<String>> = HashMap::new();
    let mut errors = Vec::new();

    for doc in documents() {
        let text = fs::read_to_string(&doc).unwrap_or_else(|e| panic!("{doc:?}: {e}"));
        let rel = doc.strip_prefix(&root).unwrap().to_path_buf();
        anchor_cache.insert(rel.clone(), anchors(&text));

        for (lineno, raw) in links(&text) {
            // Drop an optional `"title"` suffix.
            let target = raw.split(' ').next().unwrap_or("").trim();
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, frag) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target, None),
            };
            // Resolve the target relative to the linking document (or
            // the repo root for absolute paths), normalizing `..`.
            let target_rel = if path_part.is_empty() {
                rel.clone()
            } else {
                let base = if path_part.starts_with('/') {
                    PathBuf::new()
                } else {
                    rel.parent().unwrap_or(Path::new("")).to_path_buf()
                };
                let mut resolved = base;
                for comp in path_part.trim_start_matches('/').split('/') {
                    match comp {
                        "" | "." => {}
                        ".." => {
                            if !resolved.pop() {
                                errors.push(format!(
                                    "{}:{lineno}: link escapes the repository: {raw}",
                                    rel.display()
                                ));
                            }
                        }
                        c => resolved.push(c),
                    }
                }
                resolved
            };
            let abs = root.join(&target_rel);
            if !abs.exists() {
                errors.push(format!(
                    "{}:{lineno}: dead link target {}",
                    rel.display(),
                    target_rel.display()
                ));
                continue;
            }
            if let Some(frag) = frag {
                if target_rel.extension().is_some_and(|e| e == "md") {
                    let known = anchor_cache
                        .entry(target_rel.clone())
                        .or_insert_with(|| anchors(&fs::read_to_string(&abs).unwrap()));
                    if !known.iter().any(|a| a == frag) {
                        errors.push(format!(
                            "{}:{lineno}: no anchor `#{frag}` in {} (have: {})",
                            rel.display(),
                            target_rel.display(),
                            known.join(", ")
                        ));
                    }
                }
            }
        }
    }

    assert!(
        errors.is_empty(),
        "broken documentation links:\n{}",
        errors.join("\n")
    );
}

#[test]
fn slugify_matches_github_rules() {
    assert_eq!(
        slugify("The `.repro` artifact format"),
        "the-repro-artifact-format"
    );
    assert_eq!(slugify("1. The four-way sweep"), "1-the-four-way-sweep");
    assert_eq!(slugify("Install & test"), "install--test");
    assert_eq!(slugify("§3.1 Ops"), "31-ops");
    assert_eq!(
        slugify("**Bold** and [linked](x.md) words"),
        "bold-and-linked-words"
    );
}
