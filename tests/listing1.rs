//! E11: the Listing 1 contrast — MEMOIR's element-level constant
//! propagation succeeds where the lowered form's ConstantFold fails.

use memoir::ir::InstKind;

#[test]
fn memoir_folds_the_stateful_map_read() {
    let mut m = memoir::workloads::listing1::build_listing1();
    memoir::opt::construct_ssa(&mut m).unwrap();
    let stats = memoir::opt::constprop(&mut m);
    assert_eq!(stats.element_reads_forwarded, 1);

    // After DCE the whole map disappears: the function is `return 10`.
    memoir::opt::dce(&mut m);
    let f = &m.funcs[m.func_by_name("work").unwrap()];
    assert_eq!(f.live_inst_count(), 1, "only the ret remains");
    for (_, i) in f.inst_ids_in_order() {
        if let InstKind::Ret { values } = &f.insts[i].kind {
            assert_eq!(
                f.value_const(values[0]),
                Some(memoir::ir::Constant::i32(10))
            );
        }
    }
}

#[test]
fn lowered_form_cannot_fold() {
    let m = memoir::workloads::listing1::build_listing1();
    let mut lowered =
        memoir::lower::lower_module(&m).unwrap_or_else(|e| panic!("lowering listing1 failed: {e}"));
    let cf = memoir::lir::constfold(&mut lowered);
    assert_eq!(cf.load_success, 0, "opaque hashtable calls block folding");

    // Runtime agreement between the MEMOIR interpreter and the lowered
    // machine.
    let mut vm1 = memoir::interp::Interp::new(&m);
    let r1 = vm1.run_by_name("work", vec![]).unwrap()[0]
        .as_int()
        .unwrap();
    let mut vm2 = memoir::lir::LirMachine::new(&lowered);
    let r2 = vm2.run_by_name("work", vec![]).unwrap()[0];
    assert_eq!(r1, r2);
    assert_eq!(r1, 10);
}
