//! Properties of the managed `lower` pipeline stage
//! (`memoir::opt::lowering`):
//!
//! 1. **Stage transparency** — running lowering as a pass-manager stage
//!    (with verification, budgets, and profiling around it) produces a
//!    low-level module *byte-identical* to calling
//!    `memoir::lower::lower_module` directly on the same post-MEMOIR
//!    module. The stage machinery must not perturb the translation.
//! 2. **Fault containment** — a fault injected into the stage under a
//!    recovering policy (`skip` / `stop`) degrades the run instead of
//!    erroring, produces no lowered module, and leaves the MEMOIR module
//!    bit-for-bit identical to what the MEMOIR phase produced (the
//!    stage's snapshot rollback).

use memoir::ir::printer::print_module as print_memoir;
use memoir::lir::printer::print_module as print_lir;
use memoir::opt::lowering::{compile_lowered_with, LowerConfig, LoweredPipeline};
use memoir::passman::{FaultPolicy, PassOptions, PipelineSpec};
use memoir::reduce::{build, random_ops, SplitMix64};
use proptest::prelude::*;

const SPEC: &str = "ssa-construct,fixpoint<max=3>(constprop,simplify,dce),ssa-destruct";

fn pipeline(lir: &str) -> LoweredPipeline {
    LoweredPipeline {
        memoir: PipelineSpec::parse(SPEC).unwrap(),
        lower_opts: PassOptions::none(),
        lir: if lir.is_empty() {
            PipelineSpec::new(Vec::new())
        } else {
            PipelineSpec::parse(lir).unwrap()
        },
    }
}

fn quiet_config() -> LowerConfig {
    LowerConfig {
        threads: 1,
        ..LowerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: stage lowering ≡ direct lowering, byte for byte.
    #[test]
    fn stage_lowering_matches_direct_lowering(seed in 0u64..10_000) {
        let mut rng = SplitMix64::new(seed);
        let ops = random_ops(&mut rng, 24);
        let (m0, _expect) = build(&ops);

        let mut staged = m0.clone();
        let out = compile_lowered_with(&mut staged, &pipeline(""), &quiet_config())
            .expect("clean pipeline must not error");
        let via_stage = out.lowered.expect("clean pipeline must lower");

        // `staged` is now the post-MEMOIR-phase module; lower it directly.
        let direct = memoir::lower::lower_module(&staged)
            .unwrap_or_else(|e| panic!("direct lowering failed: {e}"));
        prop_assert_eq!(print_lir(&via_stage), print_lir(&direct));
    }

    /// Property 2: a faulting stage under a recovering policy leaves the
    /// MEMOIR module exactly as the MEMOIR phase left it.
    #[test]
    fn faulting_stage_rolls_back_the_memoir_module(
        seed in 0u64..10_000,
        stop in any::<bool>(),
        fault_verify in any::<bool>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let ops = random_ops(&mut rng, 24);
        let (m0, _expect) = build(&ops);

        // Reference: the clean run's post-MEMOIR module.
        let mut clean = m0.clone();
        compile_lowered_with(&mut clean, &pipeline(""), &quiet_config())
            .expect("clean pipeline must not error");

        let policy = if stop {
            FaultPolicy::StopPipeline
        } else {
            FaultPolicy::SkipPass
        };
        let plan = if fault_verify { "verify@lower" } else { "panic@lower" };
        let cfg = LowerConfig {
            policy,
            inject: Some(plan.parse().unwrap()),
            ..quiet_config()
        };
        let mut faulted = m0.clone();
        let out = compile_lowered_with(&mut faulted, &pipeline(""), &cfg)
            .expect("recovering policies contain stage faults");
        prop_assert!(out.lowered.is_none(), "a degraded stage yields no module");
        prop_assert!(out.report.run.stopped_early, "the stage is terminal");
        prop_assert_eq!(print_memoir(&faulted), print_memoir(&clean));
    }
}
