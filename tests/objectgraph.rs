//! Property tests for the object-graph program shape of the
//! whole-language fuzzer (`reduce::genprog` with
//! `CaseDims { objects: true, multi: true }`): generation must be
//! deterministic from the seed alone (including across threads), every
//! generated module must pass the MEMOIR verifier and execute to its
//! oracle value, and `.repro` artifacts carrying the new object-graph
//! ops must round-trip through the v2 text format.

use memoir::interp::Interp;
use memoir::ir::{printer, verifier};
use memoir::reduce::genprog::{build_case, random_case, random_case_config, CaseDims, Helper, Op};
use memoir::reduce::repro::Repro;
use memoir::reduce::rng::SplitMix64;
use memoir::reduce::{genspec, harness::CaseConfig};
use proptest::prelude::*;

const DIMS: CaseDims = CaseDims {
    objects: true,
    multi: true,
};

/// Generate + build one object-graph case from a bare seed.
fn case_from_seed(seed: u64) -> (String, i64) {
    let mut rng = SplitMix64::new(seed);
    let prog = random_case(&mut rng, 24, DIMS);
    let (m, expect) = build_case(&prog);
    (printer::print_module(&m), expect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same seed regenerates the same program, module, and oracle.
    #[test]
    fn object_graph_generation_is_deterministic(seed in any::<u64>()) {
        let mut rng_a = SplitMix64::new(seed);
        let mut rng_b = SplitMix64::new(seed);
        let a = random_case(&mut rng_a, 24, DIMS);
        let b = random_case(&mut rng_b, 24, DIMS);
        prop_assert_eq!(&a, &b);
        let (text_a, expect_a) = case_from_seed(seed);
        let (text_b, expect_b) = case_from_seed(seed);
        prop_assert_eq!(expect_a, expect_b);
        prop_assert_eq!(text_a, text_b);
    }

    /// Every generated object-graph module is verifier-clean in mut
    /// form, and running it reproduces the plain-Rust oracle value —
    /// the type-correctness half of the differential harness, without
    /// any optimization in between.
    #[test]
    fn object_graph_modules_verify_and_execute(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let prog = random_case(&mut rng, 32, DIMS);
        let (m, expect) = build_case(&prog);
        verifier::assert_valid(&m);
        let mut vm = Interp::new(&m).with_fuel(50_000_000);
        let out = vm.run_by_name("main", vec![]).unwrap();
        prop_assert_eq!(out[0].as_int(), Some(expect));
    }

    /// A repro forced to contain every object-graph construct (all
    /// eight new ops plus an object-argument helper) renders under the
    /// v2 header and parses back to an identical artifact.
    #[test]
    fn object_graph_repros_round_trip(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let mut prog = random_case(&mut rng, 16, DIMS);
        prog.main.extend([
            Op::LinkWrite(rng.next_u64() as u8, rng.next_u64() as u8, rng.next_u64() as i8),
            Op::LinkRead(rng.next_u64() as u8, rng.next_u64() as u8),
            Op::LinkNew(rng.next_u64() as u8, rng.next_u64() as i8),
            Op::DocPush(rng.next_u64() as u8),
            Op::DocWrite(rng.next_u64() as u8, rng.next_u64() as u8, rng.next_u64() as i8),
            Op::DocRead(rng.next_u64() as u8, rng.next_u64() as u8),
            Op::DocAssocInsert(rng.next_u64() as u8, rng.next_u64() as u8),
            Op::DocAssocRead(rng.next_u64() as u8, rng.next_u64() as u8),
        ]);
        prog.helpers.push(Helper::ObjProbe(rng.next_u64() as i8, rng.next_u64() as i8));

        let lower = rng.below(2) == 0;
        let cfg: CaseConfig = random_case_config(&mut rng, lower);
        let repro = Repro {
            seed,
            case: rng.next_u64(),
            spec: genspec::random_spec(&mut rng),
            lir_spec: cfg.lir_spec.clone(),
            adaptive: cfg.adaptive,
            policy: cfg.policy,
            budgets: cfg.budgets,
            inject: cfg.inject.clone(),
            probe_seed: (rng.below(2) == 0).then(|| rng.next_u64()),
            cache_check: cfg.cache_check,
            service_fault: cfg.service_fault.clone(),
            sym: cfg.sym,
            minimized: true,
            failure: "lower-miscompile: direct lowering returned 3, oracle says 9".into(),
            prog,
        };
        let text = repro.to_string();
        prop_assert!(text.starts_with("memoir-fuzz repro v2"), "object ops force v2: {}", text);
        let back: Repro = text.parse().unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back, repro);
    }
}

/// Generation is a pure function of the seed even under concurrency:
/// four threads building the same seed range must agree byte-for-byte
/// with the reference built on the main thread.
#[test]
fn object_graph_generation_is_thread_invariant() {
    let seeds: Vec<u64> = (0..16)
        .map(|k| 0x9e3779b97f4a7c15u64.wrapping_mul(k + 1))
        .collect();
    let reference: Vec<(String, i64)> = seeds.iter().map(|&s| case_from_seed(s)).collect();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let seeds = seeds.clone();
            std::thread::spawn(move || seeds.iter().map(|&s| case_from_seed(s)).collect::<Vec<_>>())
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), reference);
    }
}
