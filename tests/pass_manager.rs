//! Pass-manager integration tests: the spec-driven pipeline is
//! semantically equivalent to the legacy hard-coded sequence on real
//! workloads, pipeline specs round-trip and fail informatively, and the
//! analysis cache actually shares work (DomTree is computed at most once
//! per function between mutations over a full O3 run).

use memoir::interp::{Interp, Value};
use memoir::ir::{CmpOp, Form, Module, ModuleBuilder, Type};
use memoir::opt::pipeline::compile_fixed_reference;
use memoir::opt::{compile, compile_spec, default_spec, OptConfig, OptLevel};
use memoir::passman::{PipelineSpec, RunError, SpecParseError};

/// A loop-heavy program (build a sequence, fill it, branch on a prefix
/// read) whose O3 pipeline exercises DEE, the cleanup fixpoint, sinking,
/// and destruction.
fn loopy() -> Module {
    let mut mb = ModuleBuilder::new("m");
    mb.func("main", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let idxt = b.ty(Type::Index);
        let count = b.param("count", idxt);
        let zero_i = b.index(0);
        let s = b.new_seq(i64t, zero_i);
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        let one = b.index(1);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi_placeholder(idxt);
        let entry = b.func.entry;
        b.add_phi_incoming(i, entry, zero_i);
        let done = b.cmp(CmpOp::Ge, i, count);
        b.branch(done, exit, body);
        b.switch_to(body);
        let iv = b.cast(Type::I64, i);
        let sz = b.size(s);
        b.mut_insert(s, sz, Some(iv));
        let next = b.add(i, one);
        let bb = b.current_block();
        b.add_phi_incoming(i, bb, next);
        b.jump(header);
        b.switch_to(exit);
        let szf = b.size(s);
        let has_any = b.cmp(CmpOp::Gt, szf, zero_i);
        let some = b.block("some");
        let none = b.block("none");
        let out = b.block("out");
        b.branch(has_any, some, none);
        b.switch_to(some);
        let first = b.read(s, zero_i);
        b.jump(out);
        b.switch_to(none);
        let z = b.i64(0);
        b.jump(out);
        b.switch_to(out);
        let r = b.phi(i64t, vec![(some, first), (none, z)]);
        b.returns(&[i64t]);
        b.ret(vec![r]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("main");
    m
}

fn run_main(m: &Module, count: i64) -> Vec<Value> {
    let mut vm = Interp::new(m).with_fuel(50_000_000);
    vm.run_by_name("main", vec![Value::Int(Type::Index, count)])
        .unwrap()
}

// ---------------------------------------------------------------- specs

#[test]
fn spec_round_trips_through_parse_and_print() {
    for s in [
        "ssa-construct,ssa-destruct",
        "constprop,dee,fixpoint(simplify,sink,dce)",
        "mem2reg,fixpoint(constfold,gvn,sink,dce)",
    ] {
        let spec: PipelineSpec = s.parse().unwrap();
        assert_eq!(spec.to_string(), s);
        assert_eq!(spec.to_string().parse::<PipelineSpec>().unwrap(), spec);
    }
}

#[test]
fn default_specs_print_the_documented_pipelines() {
    assert_eq!(
        default_spec(OptLevel::O0).to_string(),
        "ssa-construct,ssa-destruct"
    );
    assert_eq!(
        default_spec(OptLevel::O3(OptConfig::all())).to_string(),
        "ssa-construct,constprop,fusion,dee,fixpoint(constprop,simplify,sink,dce),\
         fusion,sink,dce,ssa-destruct,field-elision,rie,key-fold,dfe"
    );
    assert_eq!(
        default_spec(OptLevel::O3(OptConfig::dee_only())).to_string(),
        "ssa-construct,constprop,fusion,dee,fixpoint(constprop,simplify,sink,dce),\
         fusion,sink,dce,ssa-destruct"
    );
}

#[test]
fn nested_fixpoint_is_a_parse_error() {
    let err = "fixpoint(a,fixpoint(b))"
        .parse::<PipelineSpec>()
        .unwrap_err();
    assert!(
        matches!(err, SpecParseError::NestedFixpoint { .. }),
        "{err:?}"
    );
}

#[test]
fn unknown_pass_error_names_the_pass_and_lists_known_ones() {
    let mut m = loopy();
    let spec = "ssa-construct,licm,ssa-destruct".parse().unwrap();
    let err = compile_spec(&mut m, &spec).unwrap_err();
    match &err {
        RunError::UnknownPass { name, known } => {
            assert_eq!(name, "licm");
            assert!(known.contains(&"constprop"));
        }
        other => panic!("expected UnknownPass, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("unknown pass `licm`"), "{msg}");
    assert!(msg.contains("dee"), "message lists known passes: {msg}");
    // Validation happens before any pass runs: still in mut form.
    assert!(m.all_in_form(Form::Mut));
}

// --------------------------------------------------------- differential

/// Spec-driven O3 must agree with the legacy hard-coded sequence, both
/// on the interpreter outputs and on the report invariants.
#[test]
fn spec_driven_o3_matches_legacy_sequence_on_loopy() {
    let m0 = loopy();
    let mut legacy = m0.clone();
    let rl = compile_fixed_reference(&mut legacy, OptLevel::O3(OptConfig::all())).unwrap();
    let mut spec = m0.clone();
    let rs = compile(&mut spec, OptLevel::O3(OptConfig::all())).unwrap();
    memoir::ir::verifier::assert_valid(&spec);

    for c in [0, 1, 7, 20] {
        assert_eq!(run_main(&m0, c), run_main(&spec, c), "vs source, count={c}");
        assert_eq!(
            run_main(&legacy, c),
            run_main(&spec, c),
            "vs legacy, count={c}"
        );
    }
    assert_eq!(rl.destruct_copies, rs.destruct_copies);
    assert_eq!(rl.ssa_census, rs.ssa_census);
}

#[test]
fn spec_driven_o3_matches_legacy_sequence_on_workloads() {
    // listing1: entry `work`, no arguments.
    let m0 = memoir::workloads::listing1::build_listing1();
    let mut legacy = m0.clone();
    compile_fixed_reference(&mut legacy, OptLevel::O3(OptConfig::all())).unwrap();
    let mut spec = m0.clone();
    compile(&mut spec, OptLevel::O3(OptConfig::all())).unwrap();
    let run = |m: &Module| {
        Interp::new(m).run_by_name("work", vec![]).unwrap()[0]
            .as_int()
            .unwrap()
    };
    assert_eq!(run(&m0), run(&spec));
    assert_eq!(run(&legacy), run(&spec));

    // deepsjeng: entry `search(depth)`.
    let m0 = memoir::workloads::deepsjeng_ir::build_deepsjeng_ir();
    let mut legacy = m0.clone();
    compile_fixed_reference(&mut legacy, OptLevel::O3(OptConfig::all())).unwrap();
    let mut spec = m0.clone();
    compile(&mut spec, OptLevel::O3(OptConfig::all())).unwrap();
    let run = |m: &Module| {
        let mut i = Interp::new(m).with_fuel(200_000_000);
        i.run_by_name("search", vec![Value::Int(Type::Index, 600)])
            .unwrap()[0]
            .as_int()
            .unwrap()
    };
    assert_eq!(run(&m0), run(&spec));
    assert_eq!(run(&legacy), run(&spec));
}

/// The issue's acceptance spec — the scalar O3 core as a hand-written
/// string — must parse and preserve semantics against legacy O3(all).
#[test]
fn handwritten_scalar_core_spec_preserves_semantics() {
    let core: PipelineSpec = "constprop,dee,fixpoint(simplify,sink,dce)".parse().unwrap();
    assert_eq!(
        core.to_string(),
        "constprop,dee,fixpoint(simplify,sink,dce)"
    );

    let full: PipelineSpec = format!("ssa-construct,{core},ssa-destruct")
        .parse()
        .unwrap();
    let m0 = loopy();
    let mut m = m0.clone();
    let report = compile_spec(&mut m, &full).unwrap();
    memoir::ir::verifier::assert_valid(&m);
    assert!(report.run.passes.iter().any(|p| p.name == "dee"));

    let mut legacy = m0.clone();
    compile_fixed_reference(&mut legacy, OptLevel::O3(OptConfig::all())).unwrap();
    for c in [0, 1, 7, 20] {
        assert_eq!(run_main(&m0, c), run_main(&m, c), "vs source, count={c}");
        assert_eq!(
            run_main(&legacy, c),
            run_main(&m, c),
            "vs legacy, count={c}"
        );
    }
}

// ---------------------------------------------------------------- cache

/// Over a full O3 run the manager must never recompute DomTree (or
/// def-use) for a function without an intervening mutation — the cache
/// is doing its job across sink iterations, fixpoint rounds, and passes.
#[test]
fn full_o3_computes_domtree_at_most_once_between_mutations() {
    let mut m = loopy();
    let report = compile_spec(&mut m, &default_spec(OptLevel::O3(OptConfig::all()))).unwrap();

    for analysis in ["dom-tree", "def-use", "loop-depths"] {
        let c = report.run.cache_counter(analysis);
        assert!(c.misses > 0, "{analysis} was requested at all");
        assert_eq!(
            c.max_computes_between_invalidations, 1,
            "{analysis} recomputed without an intervening mutation: {c:?}"
        );
    }
    // Sharing actually happened: converged sink iterations and the
    // standalone sink pass reuse cached DomTrees.
    let dom = report.run.cache_counter("dom-tree");
    assert!(dom.hits > 0, "no cache hits at all: {dom:?}");
    assert!(report.run.invalidation_events > 0);
}

/// The unified report carries per-pass stats, fixpoint iteration tags,
/// and censuses (the data `PipelineReport` used to aggregate by hand).
#[test]
fn unified_report_subsumes_the_legacy_shape() {
    let mut m = loopy();
    let report = compile_spec(&mut m, &default_spec(OptLevel::O3(OptConfig::all()))).unwrap();

    // Legacy fields are still populated.
    assert!(report.pass_times.iter().any(|(n, _)| n == "dee"));
    assert!(report.ssa_census.ssa_variables > 0);
    assert_eq!(report.destruct_copies, 0);

    // The construct pass carries the census annotation.
    let construct = report.run.last_run("ssa-construct").unwrap();
    assert!(construct
        .annotations
        .iter()
        .any(|(k, v)| k == "ssa_variables" && v.parse::<usize>().unwrap() > 0));

    // Fixpoint members are tagged with their iteration.
    assert!(report
        .run
        .passes
        .iter()
        .any(|p| p.name == "simplify" && p.fixpoint_iteration == Some(0)));

    // The destruct stats are readable directly off the run.
    let destruct = report.run.last_run("ssa-destruct").unwrap();
    assert_eq!(destruct.stat("copies_inserted"), Some(0));

    // And the table renderer mentions passes and cache lines.
    let table = report.run.render_table();
    assert!(table.contains("ssa-construct"));
    assert!(table.contains("analysis"));
}
