//! Differential property test: arbitrary MUT-form sequence programs are
//! compiled at O0 and O3(ALL), lowered to the low-level IR, and all four
//! executions (plus a plain Rust oracle) must agree — and SSA
//! construction + destruction must introduce zero copies on these linear
//! programs (Table III's claim).

use memoir::interp::Interp;
use memoir::ir::{Form, Module, ModuleBuilder, Type};
use memoir::opt::{compile, OptConfig, OptLevel};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Push(i8),
    Write(u8, i8),
    InsertAt(u8, i8),
    Remove(u8),
    SwapElems(u8, u8),
    RemoveRange(u8, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<i8>().prop_map(Op::Push),
        2 => (any::<u8>(), any::<i8>()).prop_map(|(i, v)| Op::Write(i, v)),
        2 => (any::<u8>(), any::<i8>()).prop_map(|(i, v)| Op::InsertAt(i, v)),
        1 => any::<u8>().prop_map(Op::Remove),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::SwapElems(a, b)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::RemoveRange(a, b)),
    ]
}

/// Builds the module and the oracle result together (lengths are static,
/// so out-of-bounds indices are clamped identically in both).
fn build(ops: &[Op]) -> (Module, i64) {
    let mut oracle: Vec<i64> = Vec::new();
    let mut mb = ModuleBuilder::new("prop");
    mb.func("main", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let zero = b.index(0);
        let s = b.new_seq(i64t, zero);
        for o in ops {
            match *o {
                Op::Push(v) => {
                    let sz = b.size(s);
                    let vv = b.i64(v as i64);
                    b.mut_insert(s, sz, Some(vv));
                    oracle.push(v as i64);
                }
                Op::Write(i, v) => {
                    if !oracle.is_empty() {
                        let i = i as usize % oracle.len();
                        let iv = b.index(i as u64);
                        let vv = b.i64(v as i64);
                        b.mut_write(s, iv, vv);
                        oracle[i] = v as i64;
                    }
                }
                Op::InsertAt(i, v) => {
                    let i = i as usize % (oracle.len() + 1);
                    let iv = b.index(i as u64);
                    let vv = b.i64(v as i64);
                    b.mut_insert(s, iv, Some(vv));
                    oracle.insert(i, v as i64);
                }
                Op::Remove(i) => {
                    if !oracle.is_empty() {
                        let i = i as usize % oracle.len();
                        let iv = b.index(i as u64);
                        b.mut_remove(s, iv);
                        oracle.remove(i);
                    }
                }
                Op::SwapElems(a, c) => {
                    if !oracle.is_empty() {
                        let a = a as usize % oracle.len();
                        let c = c as usize % oracle.len();
                        // Disjoint or identical single-element ranges only.
                        if a != c {
                            let av = b.index(a as u64);
                            let a1 = b.index(a as u64 + 1);
                            let cv = b.index(c as u64);
                            b.mut_swap(s, av, a1, cv);
                            oracle.swap(a, c);
                        }
                    }
                }
                Op::RemoveRange(a, c) => {
                    if !oracle.is_empty() {
                        let a = a as usize % oracle.len();
                        let c = c as usize % oracle.len();
                        let (lo, hi) = (a.min(c), a.max(c));
                        let lov = b.index(lo as u64);
                        let hiv = b.index(hi as u64);
                        b.mut_remove_range(s, lov, hiv);
                        oracle.drain(lo..hi);
                    }
                }
            }
        }
        // Epilogue: fold the sequence with a loop: acc = Σ (2*acc + elem).
        let idxt = b.ty(Type::Index);
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        let zero64 = b.i64(0);
        let pre = b.current_block();
        b.jump(header);
        b.switch_to(header);
        let i = b.phi_placeholder(idxt);
        let acc = b.phi_placeholder(i64t);
        b.add_phi_incoming(i, pre, zero);
        b.add_phi_incoming(acc, pre, zero64);
        let sz = b.size(s);
        let done = b.cmp(memoir::ir::CmpOp::Ge, i, sz);
        b.branch(done, exit, body);
        b.switch_to(body);
        let v = b.read(s, i);
        let two = b.i64(2);
        let acc2x = b.mul(acc, two);
        let acc2 = b.add(acc2x, v);
        let one = b.index(1);
        let next = b.add(i, one);
        let bb = b.current_block();
        b.add_phi_incoming(i, bb, next);
        b.add_phi_incoming(acc, bb, acc2);
        b.jump(header);
        b.switch_to(exit);
        b.returns(&[i64t]);
        b.ret(vec![acc]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("main");
    let expect = oracle
        .iter()
        .fold(0i64, |a, &v| a.wrapping_mul(2).wrapping_add(v));
    (m, expect)
}

fn run_module(m: &Module) -> i64 {
    let mut vm = Interp::new(m).with_fuel(50_000_000);
    vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn all_pipelines_agree(ops in proptest::collection::vec(op(), 0..40)) {
        let (m0, expect) = build(&ops);
        memoir::ir::verifier::assert_valid(&m0);
        prop_assert_eq!(run_module(&m0), expect, "mut form");

        // O0: construct + destruct, zero copies.
        let mut o0 = m0.clone();
        let r0 = compile(&mut o0, OptLevel::O0).unwrap();
        memoir::ir::verifier::assert_valid(&o0);
        prop_assert_eq!(r0.destruct_copies, 0, "no spurious copies");
        prop_assert_eq!(run_module(&o0), expect, "O0");

        // O3 with everything.
        let mut o3 = m0.clone();
        compile(&mut o3, OptLevel::O3(OptConfig::all())).unwrap();
        memoir::ir::verifier::assert_valid(&o3);
        prop_assert_eq!(run_module(&o3), expect, "O3");

        // Lowered to the low-level IR.
        let lowered = memoir::lower::lower_module(&o3)
            .unwrap_or_else(|e| panic!("lowering the O3 module failed: {e}"));
        let mut vm = memoir::lir::LirMachine::new(&lowered);
        let got = vm.run_by_name("main", vec![]).unwrap()[0];
        prop_assert_eq!(got, expect, "lowered");
    }
}

#[test]
fn regression_empty_program() {
    let (m, expect) = build(&[]);
    assert_eq!(run_module(&m), expect);
    assert_eq!(expect, 0);
}

#[test]
fn regression_interleaved_ops() {
    let ops = vec![
        Op::Push(5),
        Op::Push(-3),
        Op::InsertAt(1, 7),
        Op::SwapElems(0, 2),
        Op::Write(1, 9),
        Op::Push(2),
        Op::RemoveRange(1, 3),
        Op::Remove(0),
    ];
    let (m, expect) = build(&ops);
    assert_eq!(run_module(&m), expect);
    let mut o3 = m.clone();
    compile(&mut o3, OptLevel::O3(OptConfig::all())).unwrap();
    assert_eq!(run_module(&o3), expect);
}
