//! Fault-containment integration tests: a fault injected into *any*
//! registered pass of the default O3 pipeline, run under the `SkipPass`
//! policy, must be contained — the report names the pass and the cause,
//! and the resulting module is interpreter-equivalent to running the
//! same pipeline with that pass omitted (rollback means a faulting pass
//! contributes exactly nothing).

use memoir::interp::Interp;
use memoir::ir::Module;
use memoir::opt::{compile_spec_with, default_spec, OptConfig, OptLevel};
use memoir::passman::{FaultCause, FaultPlan, FaultPolicy, InjectKind, PipelineSpec, SpecStep};
use memoir::reduce::genprog::{build, random_ops, Op};
use memoir::reduce::rng::SplitMix64;
use proptest::prelude::*;

fn program() -> Vec<Op> {
    vec![
        Op::Push(5),
        Op::Push(-3),
        Op::InsertAt(1, 7),
        Op::SwapElems(0, 2),
        Op::Write(1, 9),
        Op::Push(2),
        Op::RemoveRange(1, 3),
        Op::Push(4),
        Op::Remove(0),
    ]
}

fn run_module(m: &Module) -> i64 {
    let mut vm = Interp::new(m).with_fuel(50_000_000);
    vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap()
}

/// The spec with every call of `name` removed (fixpoint groups that
/// become empty are dropped entirely).
fn omit_pass(spec: &PipelineSpec, name: &str) -> PipelineSpec {
    let steps = spec
        .steps
        .iter()
        .filter_map(|s| match s {
            SpecStep::Pass(c) if c.name == name => None,
            SpecStep::Pass(c) => Some(SpecStep::Pass(c.clone())),
            SpecStep::Fixpoint { opts, body } => {
                let body: Vec<_> = body.iter().filter(|c| c.name != name).cloned().collect();
                if body.is_empty() {
                    None
                } else {
                    Some(SpecStep::Fixpoint {
                        opts: opts.clone(),
                        body,
                    })
                }
            }
        })
        .collect();
    PipelineSpec::new(steps)
}

/// Runs `spec` over a fresh copy of the test program under `SkipPass`,
/// with an optional injection plan; returns the interpreter result and
/// the run report.
fn run_degraded(
    ops: &[Op],
    spec: &PipelineSpec,
    inject: Option<FaultPlan>,
) -> (i64, memoir::passman::RunReport) {
    let (mut m, _expect) = build(ops);
    let report = compile_spec_with(&mut m, spec, |mut pm| {
        pm = pm
            .on_fault(FaultPolicy::SkipPass)
            .verify_between_passes(true);
        if let Some(plan) = inject {
            pm = pm.with_fault_injection(plan);
        }
        pm
    })
    .expect("SkipPass never aborts the pipeline");
    (run_module(&m), report.run)
}

#[test]
fn injected_panic_is_contained_for_every_registered_pass() {
    let spec = default_spec(OptLevel::O3(OptConfig::all()));
    let ops = program();
    let (_, expect) = build(&ops);
    let mut names: Vec<&str> = spec.pass_names();
    names.dedup();
    for name in names {
        let plan = FaultPlan::at_pass(InjectKind::Panic, name);
        let (got, report) = run_degraded(&ops, &spec, Some(plan));

        // The report names the pass and the cause.
        let d = report
            .degradation_of(name)
            .unwrap_or_else(|| panic!("no degradation recorded for `{name}`"));
        assert!(
            matches!(d.cause, FaultCause::Panic(_)),
            "`{name}`: wrong cause {:?}",
            d.cause
        );

        // Interpreter-equivalent to omitting the pass outright.
        let (omitted, omitted_report) = run_degraded(&ops, &omit_pass(&spec, name), None);
        assert_eq!(got, omitted, "`{name}`: degraded != omitted");
        assert!(
            !omitted_report.is_degraded(),
            "`{name}`: the omitted pipeline should run clean"
        );

        // And still semantically correct (a single skipped optimization
        // never changes observable behaviour).
        assert_eq!(got, expect, "`{name}`: degraded pipeline miscompiled");
    }
}

#[test]
fn injected_verifier_failure_is_contained() {
    let spec = default_spec(OptLevel::O3(OptConfig::all()));
    let ops = program();
    let (_, expect) = build(&ops);
    for name in ["dee", "ssa-construct", "dfe"] {
        let plan = FaultPlan::at_pass(InjectKind::VerifyFail, name);
        let (got, report) = run_degraded(&ops, &spec, Some(plan));
        let d = report.degradation_of(name).expect("degradation recorded");
        assert!(
            matches!(d.cause, FaultCause::VerifyFailed(_)),
            "`{name}`: wrong cause {:?}",
            d.cause
        );
        let (omitted, _) = run_degraded(&ops, &omit_pass(&spec, name), None);
        assert_eq!(got, omitted, "`{name}`: degraded != omitted");
        assert_eq!(got, expect, "`{name}`: degraded pipeline miscompiled");
    }
}

#[test]
fn stop_pipeline_leaves_a_correct_module() {
    let spec = default_spec(OptLevel::O3(OptConfig::all()));
    let ops = program();
    let (_, expect) = build(&ops);
    let (mut m, _) = build(&ops);
    let report = compile_spec_with(&mut m, &spec, |pm| {
        pm.on_fault(FaultPolicy::StopPipeline)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::Panic, "dee"))
    })
    .expect("StopPipeline never aborts");
    assert!(report.run.stopped_early);
    assert!(report.run.degradation_of("dee").is_some());
    // Stopped at the last verified state — still a correct program.
    assert_eq!(run_module(&m), expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// For random programs and a random victim pass, a degraded run is
    /// observably identical to the run that never had the pass.
    #[test]
    fn degraded_run_matches_the_no_op_pass_run(seed in any::<u64>(), victim in 0usize..16) {
        let spec = default_spec(OptLevel::O3(OptConfig::all()));
        let mut names: Vec<String> =
            spec.pass_names().iter().map(|s| s.to_string()).collect();
        names.dedup();
        let name = &names[victim % names.len()];

        let mut rng = SplitMix64::new(seed);
        let ops = random_ops(&mut rng, 30);
        let (_, expect) = build(&ops);

        let plan = FaultPlan::at_pass(InjectKind::Panic, name);
        let (got, report) = run_degraded(&ops, &spec, Some(plan));
        prop_assert!(report.degradation_of(name).is_some());

        let (omitted, _) = run_degraded(&ops, &omit_pass(&spec, name), None);
        prop_assert_eq!(got, omitted, "pass `{}`", name);
        prop_assert_eq!(got, expect, "pass `{}`", name);
    }
}
