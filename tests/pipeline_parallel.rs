//! Parallel-execution integration tests: the sharded function-pass
//! executor must be a pure performance feature — for any generated
//! multi-function module and any worker count, the optimized IR and the
//! per-pass stat report are byte-identical to the serial run; and a
//! fault injected into one function of a sharded pass rolls back exactly
//! that function, leaving the rest of the shard's work in place.

use memoir::ir::printer::{print_function, print_module};
use memoir::ir::Module;
use memoir::opt::{compile_spec_with, default_spec, OptConfig, OptLevel};
use memoir::passman::{
    FaultCause, FaultPlan, FaultPolicy, InjectKind, PipelineSpec, RecoveryAction, RunReport,
};
use memoir::reduce::genprog::{build_multi, random_ops, Op};
use memoir::reduce::rng::SplitMix64;
use proptest::prelude::*;

/// Optimizes a fresh copy of the module with an explicit worker count;
/// returns the printed IR and the run report.
fn run_with_threads(m: &Module, spec: &PipelineSpec, threads: usize) -> (String, RunReport) {
    let mut m = m.clone();
    let report = compile_spec_with(&mut m, spec, |pm| {
        pm.with_threads(threads).verify_between_passes(true)
    })
    .expect("pipeline runs clean");
    (print_module(&m), report.run)
}

/// The determinism fingerprint of a run: per pass, its name, changed bit
/// and full stat list, in execution order.
type Fingerprint = Vec<(String, bool, Vec<(&'static str, i64)>)>;

fn fingerprint(r: &RunReport) -> Fingerprint {
    r.passes
        .iter()
        .map(|p| (p.name.clone(), p.changed, p.stats.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Serial and sharded runs of the full O3 pipeline produce identical
    /// printed IR and identical pass-stat reports on generated
    /// multi-function modules.
    #[test]
    fn parallel_o3_is_bit_identical_to_serial(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let n_funcs = 3 + rng.index(4);
        let progs: Vec<Vec<Op>> =
            (0..n_funcs).map(|_| random_ops(&mut rng, 20)).collect();
        let (m, _) = build_multi(&progs);
        let spec = default_spec(OptLevel::O3(OptConfig::all()));

        let (serial_ir, serial_report) = run_with_threads(&m, &spec, 1);
        for threads in [2usize, 4, 8] {
            let (ir, report) = run_with_threads(&m, &spec, threads);
            prop_assert_eq!(&ir, &serial_ir, "IR diverged at threads={}", threads);
            prop_assert_eq!(
                fingerprint(&report),
                fingerprint(&serial_report),
                "stats diverged at threads={}",
                threads
            );
        }
    }

    /// The same holds under a recovering policy (copy-on-write snapshots
    /// active) with no fault firing: snapshots must be invisible.
    #[test]
    fn parallel_with_cow_snapshots_is_bit_identical(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let progs: Vec<Vec<Op>> = (0..4).map(|_| random_ops(&mut rng, 16)).collect();
        let (m, _) = build_multi(&progs);
        let spec = default_spec(OptLevel::O3(OptConfig::all()));

        let run = |threads: usize| {
            let mut m = m.clone();
            let report = compile_spec_with(&mut m, &spec, |pm| {
                pm.on_fault(FaultPolicy::SkipPass).with_threads(threads)
            })
            .expect("SkipPass never aborts");
            (print_module(&m), report.run)
        };
        let (serial_ir, serial_report) = run(1);
        prop_assert!(!serial_report.is_degraded());
        for threads in [2usize, 4] {
            let (ir, report) = run(threads);
            prop_assert_eq!(&ir, &serial_ir, "IR diverged at threads={}", threads);
            prop_assert_eq!(
                fingerprint(&report),
                fingerprint(&serial_report),
                "stats diverged at threads={}",
                threads
            );
        }
    }
}

/// Splits a module into its functions' printed forms, in stable order.
fn printed_funcs(m: &Module) -> Vec<String> {
    m.funcs
        .iter()
        .map(|(_, f)| print_function(f, &m.types, m))
        .collect()
}

/// A panic injected into one function of the sharded `simplify` pass,
/// under `SkipPass`, rolls back only that function: the victim keeps its
/// pre-simplify form while every other function is simplified exactly as
/// in a clean run, and the degradation names the function.
#[test]
fn shard_fault_rolls_back_only_the_faulting_function() {
    // Four functions, each with guaranteed simplify work: a same-target
    // branch (→ jump) ahead of a distinctive return constant.
    let mut mb = memoir::ir::ModuleBuilder::new("m");
    for i in 0..4i64 {
        mb.func(&format!("f{i}"), memoir::ir::Form::Ssa, |b| {
            let i64t = b.ty(memoir::ir::Type::I64);
            let next = b.block("next");
            let c = b.bool(true);
            b.branch(c, next, next);
            b.switch_to(next);
            let v = b.i64(i);
            b.returns(&[i64t]);
            b.ret(vec![v]);
        });
    }
    let m0 = mb.finish();
    let spec: PipelineSpec = "simplify".parse().unwrap();

    // Reference points: the module before simplify, and after a clean run.
    let pre_funcs = printed_funcs(&m0);
    let mut clean = m0.clone();
    let clean_report = compile_spec_with(&mut clean, &spec, |pm| pm).unwrap();
    let clean_funcs = printed_funcs(&clean);
    assert_eq!(
        clean_report
            .run
            .last_run("simplify")
            .and_then(|p| p.stat("branches_to_jumps")),
        Some(4),
        "test premise: simplify must change every function"
    );

    for victim in 0..4usize {
        let plan = FaultPlan::at_pass(InjectKind::Panic, "simplify").on_func(victim);
        let mut m = m0.clone();
        let report = compile_spec_with(&mut m, &spec, |pm| {
            pm.on_fault(FaultPolicy::SkipPass)
                .with_threads(4)
                .with_fault_injection(plan.clone())
        })
        .expect("SkipPass never aborts");

        // The degradation names the pass, the function, and the action.
        let d = report
            .run
            .degradations
            .iter()
            .find(|d| d.pass == "simplify")
            .expect("contained fault recorded");
        assert!(matches!(d.cause, FaultCause::Panic(_)), "{:?}", d.cause);
        assert_eq!(d.func_index, Some(victim));
        assert!(d.func.is_some(), "rendered function key present");
        assert_eq!(d.action, RecoveryAction::RolledBack);

        // Exactly the victim rolled back; everyone else kept their work.
        let got = printed_funcs(&m);
        for i in 0..4usize {
            if i == victim {
                assert_eq!(
                    got[i], pre_funcs[i],
                    "victim {i} must match its pre-simplify form"
                );
            } else {
                assert_eq!(
                    got[i], clean_funcs[i],
                    "func {i} must match the clean run (victim {victim})"
                );
            }
        }
    }
}
