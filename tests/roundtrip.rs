//! Round-trip and algebraic-law tests: printer→parser stability on every
//! workload module, pipeline idempotence, and the range-lattice laws of
//! Defs. 3–5.

use memoir::analysis::{Expr, Range};
use memoir::ir::{parser, printer};
use proptest::prelude::*;

fn workload_modules() -> Vec<(&'static str, memoir::ir::Module)> {
    vec![
        ("mcf", memoir::workloads::mcf_ir::build_mcf_ir()),
        (
            "deepsjeng",
            memoir::workloads::deepsjeng_ir::build_deepsjeng_ir(),
        ),
        ("optlike", memoir::workloads::optlike_ir::build_optlike_ir()),
        ("listing1", memoir::workloads::listing1::build_listing1()),
    ]
}

/// `print ∘ parse ∘ print = print` for every workload module (mut form).
#[test]
fn printer_parser_round_trip_mut_form() {
    for (name, m) in workload_modules() {
        let text = printer::print_module(&m);
        let parsed = parser::parse_module(&text)
            .unwrap_or_else(|e| panic!("{name}: parse failed: {e}\n{text}"));
        memoir::ir::verifier::assert_valid(&parsed);
        let text2 = printer::print_module(&parsed);
        let parsed2 = parser::parse_module(&text2).unwrap();
        assert_eq!(
            text2,
            printer::print_module(&parsed2),
            "{name}: second round trip must be stable"
        );
    }
}

/// The SSA form also prints and parses.
#[test]
fn printer_parser_round_trip_ssa_form() {
    for (name, mut m) in workload_modules() {
        memoir::opt::construct_ssa(&mut m).unwrap();
        let text = printer::print_module(&m);
        let parsed =
            parser::parse_module(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        memoir::ir::verifier::assert_valid(&parsed);
    }
}

/// Parsed modules still execute identically.
#[test]
fn parsed_listing1_executes() {
    let m = memoir::workloads::listing1::build_listing1();
    let text = printer::print_module(&m);
    let mut parsed = parser::parse_module(&text).unwrap();
    parsed.entry = parsed.func_by_name("work");
    let mut vm = memoir::interp::Interp::new(&parsed);
    let out = vm.run_by_name("work", vec![]).unwrap();
    assert_eq!(out[0].as_int(), Some(10));
}

/// Compiling an already-compiled (mut-form) module again is safe and
/// preserves behaviour.
#[test]
fn pipeline_is_repeatable() {
    let mut m = memoir::workloads::listing1::build_listing1();
    memoir::opt::compile(&mut m, memoir::opt::OptLevel::O0).unwrap();
    memoir::opt::compile(&mut m, memoir::opt::OptLevel::O0).unwrap();
    memoir::ir::verifier::assert_valid(&m);
    let mut vm = memoir::interp::Interp::new(&m);
    assert_eq!(
        vm.run_by_name("work", vec![]).unwrap()[0].as_int(),
        Some(10)
    );
}

// ------------------------------------------------------- lattice laws

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-8i64..32).prop_map(Expr::constant),
        (0u32..4).prop_map(|r| Expr::value(memoir::ir::ValueId::from_raw(r))),
        Just(Expr::end()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::min2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::max2(a, b)),
            (inner, -4i64..4).prop_map(|(a, c)| a.offset(c)),
        ]
    })
}

fn range() -> impl Strategy<Value = Range> {
    (expr(), expr()).prop_map(|(lo, hi)| Range::new(lo, hi))
}

proptest! {
    #[test]
    fn join_is_commutative(a in range(), b in range()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn meet_is_commutative(a in range(), b in range()) {
        prop_assert_eq!(a.meet(&b), b.meet(&a));
    }

    #[test]
    fn join_is_associative(a in range(), b in range(), c in range()) {
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn meet_is_associative(a in range(), b in range(), c in range()) {
        prop_assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
    }

    #[test]
    fn join_and_meet_are_idempotent(a in range()) {
        // Join canonicalizes (symbolically) empty ranges to `[0 : 0)`;
        // idempotence is structural only on proper ranges.
        if !a.is_empty_const() {
            prop_assert_eq!(a.join(&a), a.clone());
        } else {
            prop_assert!(a.join(&a).is_empty_const());
        }
        prop_assert_eq!(a.meet(&a), a);
    }

    #[test]
    fn shift_distributes_over_join(a in range(), b in range(), c in -4i64..4) {
        // Empty ranges canonicalize under join, which does not commute
        // with shifting; the law holds on proper ranges.
        prop_assume!(!a.is_empty_const() && !b.is_empty_const());
        prop_assert_eq!(
            a.join(&b).shift_const(c),
            a.shift_const(c).join(&b.shift_const(c))
        );
    }

    #[test]
    fn subtree_order_is_reflexive_and_transitive_on_min(a in expr(), b in expr()) {
        let m = Expr::min2(a.clone(), b.clone());
        prop_assert!(m.contains(&m));
        // Children of a canonical min are subtrees.
        if let Expr::Min(es) = &m {
            for e in es {
                prop_assert!(m.contains(e));
            }
        }
    }
}
