//! Property tests: the MUT runtime collections behave exactly like their
//! std oracles under arbitrary operation sequences.

use memoir::runtime::{Assoc, Seq};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum SeqOp {
    Push(i64),
    Write(usize, i64),
    Insert(usize, i64),
    Remove(usize),
    Swap(usize, usize),
    SplitAppend(usize, usize),
}

fn seq_op() -> impl Strategy<Value = SeqOp> {
    prop_oneof![
        any::<i64>().prop_map(SeqOp::Push),
        (any::<usize>(), any::<i64>()).prop_map(|(i, v)| SeqOp::Write(i, v)),
        (any::<usize>(), any::<i64>()).prop_map(|(i, v)| SeqOp::Insert(i, v)),
        any::<usize>().prop_map(SeqOp::Remove),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| SeqOp::Swap(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| SeqOp::SplitAppend(a, b)),
    ]
}

proptest! {
    #[test]
    fn seq_matches_vec_oracle(ops in proptest::collection::vec(seq_op(), 0..64)) {
        let mut s: Seq<i64> = Seq::new();
        let mut v: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                SeqOp::Push(x) => {
                    s.push(x);
                    v.push(x);
                }
                SeqOp::Write(i, x) if !v.is_empty() => {
                    let i = i % v.len();
                    s.write(i, x);
                    v[i] = x;
                }
                SeqOp::Insert(i, x) => {
                    let i = i % (v.len() + 1);
                    s.insert(i, x);
                    v.insert(i, x);
                }
                SeqOp::Remove(i) if !v.is_empty() => {
                    let i = i % v.len();
                    prop_assert_eq!(s.remove(i), v.remove(i));
                }
                SeqOp::Swap(a, b) if !v.is_empty() => {
                    let (a, b) = (a % v.len(), b % v.len());
                    s.swap(a, b);
                    v.swap(a, b);
                }
                SeqOp::SplitAppend(a, b) if !v.is_empty() => {
                    let (a, b) = (a % v.len(), b % v.len());
                    let (lo, hi) = (a.min(b), a.max(b));
                    let mid = s.split(lo, hi);
                    let vm: Vec<i64> = v.drain(lo..hi).collect();
                    prop_assert_eq!(mid.as_slice(), vm.as_slice());
                    s.append(mid);
                    v.extend(vm);
                }
                _ => {}
            }
            prop_assert_eq!(s.as_slice(), v.as_slice());
        }
    }

    #[test]
    fn assoc_matches_hashmap_oracle(
        ops in proptest::collection::vec((0u8..4, -8i64..8, any::<i64>()), 0..64)
    ) {
        let mut a: Assoc<i64, i64> = Assoc::new();
        let mut h: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
        for (kind, k, v) in ops {
            match kind {
                0 => {
                    a.write(k, v);
                    h.insert(k, v);
                }
                1 => {
                    prop_assert_eq!(a.remove(&k), h.remove(&k));
                }
                2 => {
                    prop_assert_eq!(a.contains(&k), h.contains_key(&k));
                }
                _ => {
                    prop_assert_eq!(a.get(&k), h.get(&k));
                }
            }
            prop_assert_eq!(a.size(), h.len());
        }
        // keys() returns exactly the live keys.
        let mut ks: Vec<i64> = a.keys().as_slice().to_vec();
        ks.sort_unstable();
        let mut hk: Vec<i64> = h.keys().copied().collect();
        hk.sort_unstable();
        prop_assert_eq!(ks, hk);
    }
}
