//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment for this workspace has no network access, so the
//! real crates-io `criterion` cannot be fetched. This stub implements the
//! subset of the API the workspace's benches use — `Criterion` with
//! `bench_function` / `benchmark_group` / `bench_with_input`, `Bencher`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. It performs a short warm-up, then times the
//! closure over a fixed wall-clock budget and prints mean iteration time —
//! no statistics, plots, or baselines.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, first warming up, then iterating until the measurement
    /// budget (or the sample size, whichever is larger) is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < self.sample_size as u64 || start.elapsed() < self.measurement_time {
            black_box(f());
            iters += 1;
            if iters >= 1_000_000_000 {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of timed iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((iters, total)) if iters > 0 => {
                let per = total.as_secs_f64() / iters as f64;
                println!("{id:<48} {:>12.3} µs/iter ({iters} iters)", per * 1e6);
            }
            _ => println!("{id:<48} (no measurement)"),
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.as_ref(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.parent.run_one(&full, &mut f);
        self
    }

    /// Benchmarks a function parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.parent.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
