//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no network access, so the
//! real crates-io `proptest` cannot be fetched. This stub implements the
//! subset of the API the workspace's property tests use — `Strategy` with
//! `prop_map` / `prop_recursive`, integer-range and tuple strategies,
//! `any`, `Just`, `prop_oneof!`, `proptest::collection::vec`, the
//! `proptest!` macro with `ProptestConfig`, and the `prop_assert*` /
//! `prop_assume!` macros — on top of a deterministic splitmix64 generator.
//!
//! It generates random cases and reports failures; it does **not** shrink
//! counterexamples or persist regression files. Tests are seeded from the
//! test name, so runs are reproducible.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    //! Test-runner types: configuration, RNG, and case errors.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it is skipped.
        Reject,
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }

    /// Result type threaded through a generated test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// Generates values of an associated type from random bits.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Clone + std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized + 'static,
            O: Clone + std::fmt::Debug + 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.generate(rng))
        }

        /// Builds a recursive strategy: starting from `self` as the leaf
        /// case, applies `recurse` up to `depth` times. Each level picks
        /// between the previous level and the expanded strategy, so
        /// generated trees have bounded depth `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let mut cur = self.boxed();
            for _ in 0..depth.max(1) {
                let leaf = cur.clone();
                let expanded = recurse(cur).boxed();
                cur = BoxedStrategy::from_fn(move |rng| {
                    if rng.below(4) == 0 {
                        leaf.generate(rng)
                    } else {
                        expanded.generate(rng)
                    }
                });
            }
            cur
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> BoxedStrategy<V> {
        /// Wraps a generation closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<V: Clone + std::fmt::Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Strategy that always yields a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone + std::fmt::Debug> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);

    /// Weighted union of type-erased strategies (used by `prop_oneof!`).
    pub fn union<V: Clone + std::fmt::Debug + 'static>(
        arms: Vec<(u32, BoxedStrategy<V>)>,
    ) -> BoxedStrategy<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        BoxedStrategy::from_fn(move |rng| {
            let mut pick = rng.below(total);
            for (w, s) in &arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!()
        })
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Clone + std::fmt::Debug + Sized + 'static {
        /// Generates an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{BoxedStrategy, Strategy};

    /// A range of collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let span = (size.max - size.min).max(1) as u64;
            let len = size.min + rng.below(span) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects (skips) the current generated case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                )+
                let outcome: $crate::test_runner::TestCaseResult =
                    (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        continue
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(m)) => {
                        panic!("proptest case {} failed: {}", _case, m)
                    }
                    ::std::result::Result::Ok(()) => {}
                }
            }
        }
    )*};
}
